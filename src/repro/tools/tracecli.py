"""``repro-trace``: merge flight-recorder dumps into causal timelines.

Each node's :class:`~repro.obs.flight.FlightRecorder` dumps a JSONL
file of protocol events (``dump_flight``).  This module is the other
half of the tracing tentpole: it merges those per-node dumps into one
**happens-before-ordered** timeline by reconstructing the causal edges
the protocol implies —

* per-node program order (the ring is already ordered);
* ``send → recv`` edges, matched by trace id and origin;
* delivery edges (``submit``/``recv``/``red`` precede the action's
  ``green`` on the same node);
* the cross-shard transaction chain: ``txn.begin → prepare greens →
  txn.decide → decide green → txn.decided → finish greens → txn.done``
  linked through the coordinator's flight events.

Exports a plain-text view and Chrome trace-event JSON (load the file
in Perfetto / ``chrome://tracing``), plus the file-writing helpers the
protocol layers must not contain (``repro.obs`` is inside the
blocking-I/O seam; this module is the tools layer and is exempt).

The same event-row shape (``{"node", "t", "kind", "trace", "detail"}``)
is also produced from a live :class:`~repro.sim.trace.Tracer` by
:func:`rows_from_tracer`, so :mod:`repro.tools.timeline` renders its
ASCII state timeline through the one code path used for dumps.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from ..obs import Observability
from ..obs.flight import FlightHub
from ..shard.router import shard_of
from ..sim import Tracer

#: One merged event row (the JSONL dump schema).
Row = Dict[str, Any]
#: A happens-before edge between two indices into the merged row list.
Edge = Tuple[int, int]


# ======================================================================
# dump side: the file I/O that must stay out of repro.obs
# ======================================================================
def dump_flight(source: Any, out_dir: str,
                reason: str = "manual") -> List[str]:
    """Write one ``flight-<node>.jsonl`` per recorder into ``out_dir``.

    ``source`` is an :class:`~repro.obs.Observability` bundle, a
    :class:`~repro.obs.flight.FlightHub`, or a pre-built dump dict (as
    handed to an anomaly sink).  Returns the paths written; a no-op
    (empty list) when tracing is off.
    """
    if isinstance(source, Observability):
        hub = source.flight_hub
        dump = hub.dump() if hub is not None else {}
    elif isinstance(source, FlightHub):
        dump = source.dump()
    else:
        dump = source
    if not dump:
        return []
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for key, rows in dump.items():
        path = os.path.join(out_dir, f"flight-{reason}-{key}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, default=str) + "\n")
        paths.append(path)
    return paths


def flight_sink(out_dir: str):
    """A dump-on-anomaly sink for :attr:`FlightHub.sink`: each anomaly
    writes a numbered artifact set under ``out_dir``."""
    counter = [0]

    def sink(reason: str, dump: Dict[Any, List[Row]]) -> None:
        counter[0] += 1
        dump_flight(dump, out_dir,
                    reason=f"anomaly{counter[0]}-{reason}")
    return sink


def load_rows(paths: Sequence[str]) -> List[Row]:
    """Load and merge JSONL dumps; ``paths`` may mix files and
    directories (directories are scanned for ``*.jsonl``)."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(os.path.join(path, name)
                         for name in sorted(os.listdir(path))
                         if name.endswith(".jsonl"))
        else:
            files.append(path)
    rows: List[Row] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
    return merge_rows(rows)


def merge_rows(rows: Iterable[Row]) -> List[Row]:
    """Merged timeline order: by time, then node, preserving each
    node's program order (the per-node input order) for ties."""
    per_node_seq: Dict[Any, int] = defaultdict(int)
    keyed = []
    for row in rows:
        node = row.get("node")
        seq = per_node_seq[node]
        per_node_seq[node] = seq + 1
        keyed.append((row.get("t", 0.0), str(node), seq, row))
    keyed.sort(key=lambda item: item[:3])
    return [item[3] for item in keyed]


def rows_from_tracer(tracer: Tracer,
                     category: Optional[str] = None) -> List[Row]:
    """Event rows from a live :class:`Tracer` — the same shape the
    flight dumps use, so every renderer here works on both."""
    records = (tracer.select(category) if category is not None
               else list(tracer.records))
    return merge_rows(
        {"node": r.node, "t": r.time, "kind": r.category,
         "detail": [f"{k}={v}" for k, v in r.detail.items()]}
        for r in records)


# ======================================================================
# assembly: happens-before edges over merged rows
# ======================================================================
def _detail(row: Row) -> List[Any]:
    return row.get("detail") or []


def happens_before(rows: Sequence[Row]) -> List[Edge]:
    """The causal edges implied by the protocol, as index pairs into
    ``rows`` (which must be in :func:`merge_rows` order)."""
    edges: List[Edge] = []

    # 1. Per-node program order.
    last_at: Dict[Any, int] = {}
    for i, row in enumerate(rows):
        node = row.get("node")
        if node in last_at:
            edges.append((last_at[node], i))
        last_at[node] = i

    by_trace: Dict[int, List[int]] = defaultdict(list)
    for i, row in enumerate(rows):
        trace = row.get("trace", 0)
        if trace:
            by_trace[trace].append(i)

    for trace, idxs in by_trace.items():
        sends = [i for i in idxs if rows[i]["kind"] == "send"]
        recvs = [i for i in idxs if rows[i]["kind"] == "recv"]
        greens = [i for i in idxs if rows[i]["kind"] == "green"]
        submits = [i for i in idxs if rows[i]["kind"] == "submit"]

        # 2. The wire: send at the origin precedes every recv of the
        #    same trace naming that origin (retransmissions included).
        for s in sends:
            for r in recvs:
                origin = _detail(rows[r])
                if not origin or origin[0] == rows[s]["node"]:
                    edges.append((s, r))

        # 3. Delivery: an action goes green on a node only after the
        #    node submitted it locally or received it off the wire.
        for g in greens:
            node = rows[g]["node"]
            for i in submits + recvs:
                if rows[i]["node"] == node:
                    edges.append((i, g))

        # 4. The cross-shard transaction chain, stitched through the
        #    coordinator's own flight events.
        edges.extend(_txn_edges(rows, idxs, greens, submits))
    return edges


def _txn_edges(rows: Sequence[Row], idxs: Sequence[int],
               greens: Sequence[int],
               submits: Sequence[int]) -> List[Edge]:
    """Causal edges of one transaction trace (empty for plain
    actions): begin → prepare-greens → prepared → decide →
    decide-green → decided → finish-greens → finish → done.

    Coordinator callbacks fire on the *submitting* replica's green, so
    green → coordinator edges are restricted to nodes that submitted a
    record of this trace; other replicas' greens follow from the
    record's submit/send/recv edges but do not precede the
    coordinator's next step.
    """
    coord = {kind: [i for i in idxs if rows[i]["kind"] == kind]
             for kind in ("txn.begin", "txn.prepared", "txn.decide",
                          "txn.decided", "txn.finish", "txn.done")}
    if not coord["txn.begin"]:
        return []
    edges: List[Edge] = []
    begin = coord["txn.begin"][0]
    submit_nodes = {rows[i]["node"] for i in submits}

    def phase_greens(phase: str) -> List[int]:
        return [g for g in greens if phase in _detail(rows[g])[1:]]

    def callback_greens(phase: str) -> List[int]:
        return [g for g in phase_greens(phase)
                if rows[g]["node"] in submit_nodes]

    for g in phase_greens("prepare"):
        edges.append((begin, g))
    for g in callback_greens("prepare"):
        shard = shard_of(rows[g]["node"])
        for p in coord["txn.prepared"]:
            if _detail(rows[p]) == [shard]:
                edges.append((g, p))
    for d in coord["txn.decide"]:
        edges.extend((p, d) for p in coord["txn.prepared"])
        edges.extend((d, g) for g in phase_greens("decide"))
    for dd in coord["txn.decided"]:
        edges.extend((g, dd) for g in callback_greens("decide"))
        edges.extend((dd, g) for g in phase_greens("finish"))
    for g in callback_greens("finish"):
        shard = shard_of(rows[g]["node"])
        for f in coord["txn.finish"]:
            if _detail(rows[f]) == [shard]:
                edges.append((g, f))
    for done in coord["txn.done"]:
        edges.extend((f, done) for f in coord["txn.finish"])
    return edges


def descendants(edges: Sequence[Edge], start: int) -> Set[int]:
    """Indices reachable from ``start`` over ``edges`` (the transitive
    happens-after set; used by tests to assert causal chains)."""
    succ: Dict[int, List[int]] = defaultdict(list)
    for a, b in edges:
        succ[a].append(b)
    seen: Set[int] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nxt in succ[node]:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def causal_signature(
        rows: Sequence[Row]) -> Dict[int, Set[Tuple[Any, Any]]]:
    """Per-trace causal structure, stripped of timestamps: for each
    trace id the set of ``(node, kind) → (node, kind)`` edges.  Two
    runs of the same scenario — simulated or live — must agree on
    this even though their clocks differ."""
    edges = happens_before(rows)
    sig: Dict[int, Set[Tuple[Any, Any]]] = defaultdict(set)
    for a, b in edges:
        trace = rows[a].get("trace", 0)
        if trace and rows[b].get("trace", 0) == trace:
            sig[trace].add(((rows[a]["node"], rows[a]["kind"]),
                            (rows[b]["node"], rows[b]["kind"])))
    return dict(sig)


# ======================================================================
# rendering
# ======================================================================
def render_text(rows: Sequence[Row],
                trace: Optional[int] = None) -> str:
    """One line per event, merged-timeline order, optionally filtered
    to a single trace id."""
    lines = []
    for row in rows:
        if trace is not None and row.get("trace", 0) != trace:
            continue
        tid = row.get("trace", 0)
        detail = _detail(row)
        lines.append(
            f"t={row.get('t', 0.0):12.6f}  {str(row.get('node')):>6} "
            f" {row['kind']:<16}"
            + (f" trace={tid:#x}" if tid else "")
            + (f" {' '.join(str(d) for d in detail)}" if detail else ""))
    return "\n".join(lines)


def chrome_trace(rows: Sequence[Row]) -> Dict[str, Any]:
    """Chrome trace-event JSON (Perfetto-loadable): every event as an
    instant on its node's track, plus one async span per trace id
    from its first to its last event."""
    events: List[Dict[str, Any]] = []
    first: Dict[int, Row] = {}
    last: Dict[int, Row] = {}
    for row in rows:
        ts = row.get("t", 0.0) * 1e6  # trace-event time unit: µs
        node = str(row.get("node"))
        args: Dict[str, Any] = {}
        if row.get("trace"):
            args["trace"] = f"{row['trace']:#x}"
        if row.get("detail") is not None:
            args["detail"] = row["detail"]
        events.append({"name": row["kind"], "ph": "i", "s": "t",
                       "ts": ts, "pid": "repro", "tid": node,
                       "args": args})
        trace = row.get("trace", 0)
        if trace:
            first.setdefault(trace, row)
            last[trace] = row
    for trace, row in first.items():
        end = last[trace]
        ident = f"{trace:#x}"
        events.append({"name": ident, "cat": "trace", "ph": "b",
                       "id": ident, "ts": row.get("t", 0.0) * 1e6,
                       "pid": "repro", "tid": str(row.get("node"))})
        events.append({"name": ident, "cat": "trace", "ph": "e",
                       "id": ident, "ts": end.get("t", 0.0) * 1e6,
                       "pid": "repro", "tid": str(end.get("node"))})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ======================================================================
# CLI
# ======================================================================
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Merge flight-recorder dumps into one causally "
                    "ordered timeline.")
    parser.add_argument("inputs", nargs="+",
                        help="JSONL dump files or directories of them")
    parser.add_argument("--trace", type=lambda s: int(s, 0), default=None,
                        help="only show events of one trace id")
    parser.add_argument("--chrome", metavar="FILE", default=None,
                        help="also write Chrome trace-event JSON "
                             "(open in Perfetto)")
    parser.add_argument("--edges", action="store_true",
                        help="print the happens-before edge count and "
                             "per-trace causal signatures")
    args = parser.parse_args(argv)

    rows = load_rows(args.inputs)
    if not rows:
        print("no flight events found", file=sys.stderr)
        return 1
    print(render_text(rows, trace=args.trace))
    if args.edges:
        edges = happens_before(rows)
        sig = causal_signature(rows)
        print(f"\n{len(rows)} events, {len(edges)} happens-before "
              f"edges, {len(sig)} traces")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(rows), fh)
        print(f"chrome trace written to {args.chrome}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
