"""Stable storage substrate: simulated disks, WAL, persistent records."""

from .disk import DiskProfile, SimulatedDisk, WriteRequest
from .store import StableStore
from .wal import LogRecord, WriteAheadLog

__all__ = [
    "DiskProfile",
    "LogRecord",
    "SimulatedDisk",
    "StableStore",
    "WriteAheadLog",
    "WriteRequest",
]
