"""Simulated stable storage device.

The paper's performance story is driven by *forced* disk writes: the
replication engine pays one per action (at the originator), COReL one
per action at every replica, and two-phase commit two per action in the
critical path.  Figure 5(b) isolates exactly this cost by re-running the
engine with delayed (asynchronous) writes.

The model: a disk serves synchronous flushes one *batch* at a time.  A
forced write enqueues a request; whenever the platter is free, all
queued requests are committed together in a single sync taking
``forced_write_latency`` (group commit, which every real engine and DBMS
does).  ``max_batch`` can be set to 1 to disable batching (ablation
E7).  Delayed writes complete after ``async_write_latency`` without
durability: a crash loses them.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from ..sim import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..runtime.base import Runtime

#: Sync-wait buckets: sub-millisecond (live profile) up to a second of
#: group-commit queueing.
SYNC_WAIT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                     0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)

Callback = Callable[[], None]


@dataclass
class DiskProfile:
    """Timing parameters for the simulated disk.

    forced_write_latency   one platter sync (seek + rotate + write + ack)
    async_write_latency    buffered write acknowledged from cache
    max_batch              max requests folded into one sync (group
                           commit); ``None`` means unlimited
    """

    forced_write_latency: float = 0.0095
    async_write_latency: float = 0.00005
    max_batch: Optional[int] = None


class WriteRequest:
    """One outstanding write.

    ``replace`` marks a log-rewrite request: on completion the payload
    (a list) atomically *replaces* the durable contents instead of
    being appended — the compaction primitive (write new log file,
    rename over the old one).
    """

    __slots__ = ("payload", "callback", "forced", "issued_at", "done",
                 "replace")

    def __init__(self, payload: Any, callback: Optional[Callback],
                 forced: bool, issued_at: float, replace: bool = False):
        self.payload = payload
        self.callback = callback
        self.forced = forced
        self.issued_at = issued_at
        self.done = False
        self.replace = replace


class SimulatedDisk:
    """A per-node disk with durable and volatile regions.

    ``durable`` holds payloads whose write completed (synced, or
    asynchronously flushed).  ``volatile`` holds async-written payloads
    still in cache.  :meth:`crash` discards the cache and all pending
    requests without invoking their callbacks.
    """

    def __init__(self, sim: "Runtime", node: int,
                 profile: Optional[DiskProfile] = None,
                 tracer: Optional[Tracer] = None,
                 obs: Optional["Observability"] = None):
        self.sim = sim
        self.node = node
        self.profile = profile or DiskProfile()
        self.tracer = tracer or Tracer(enabled=False)
        # fsync accounting: a latency histogram fed per completed
        # request, plus collection-time mirrors of the counters below
        # (zero cost between scrapes).
        self._h_sync_wait = None
        if obs is not None and obs.enabled:
            registry = obs.registry
            self._h_sync_wait = registry.histogram(
                "repro_disk_sync_wait_seconds",
                "Issue-to-durable wait of forced writes (group commit "
                "queueing included).", ("server",),
                buckets=SYNC_WAIT_BUCKETS).labels(node)
            for name, help, fn in (
                    ("repro_disk_forced_writes",
                     "Forced (synchronous) writes issued.",
                     lambda: self.forced_writes),
                    ("repro_disk_syncs",
                     "Platter syncs performed (group commits).",
                     lambda: self.syncs),
                    ("repro_disk_async_writes",
                     "Buffered (asynchronous) writes issued.",
                     lambda: self.async_writes)):
                registry.gauge_callback(name, fn, help,
                                        ("server",), (node,))
        self.durable: List[Any] = []
        self.volatile: List[Any] = []
        self._queue: List[WriteRequest] = []
        self._busy = False
        self._incarnation = 0
        self.forced_writes = 0
        self.syncs = 0
        self.async_writes = 0
        self.total_sync_wait = 0.0
        # Bumped on every mutation of ``durable``; recovery-scan caches
        # (the WAL's typed index) key off it.
        self.durable_version = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, payload: Any, callback: Optional[Callback] = None,
              forced: bool = True) -> None:
        """Write ``payload``; invoke ``callback`` when it is durable
        (forced) or buffered (async)."""
        if forced:
            self.forced_writes += 1
            request = WriteRequest(payload, callback, True, self.sim.now)
            self._queue.append(request)
            self._maybe_start_sync()
        else:
            self.async_writes += 1
            self.volatile.append(payload)
            self.sim.post(self.profile.async_write_latency,
                          self._async_done, callback, self._incarnation)

    def _async_done(self, callback: Optional[Callback],
                    incarnation: int) -> None:
        if incarnation != self._incarnation:
            return
        if callback is not None:
            callback()

    def rewrite(self, contents: List[Any],
                callback: Optional[Callback] = None) -> None:
        """Atomically replace the durable contents (log compaction).

        The replacement happens at sync completion; a crash mid-rewrite
        leaves the previous durable contents intact (the new log is
        written to the side and renamed over the old one).
        """
        self.forced_writes += 1
        request = WriteRequest(list(contents), callback, True,
                               self.sim.now, replace=True)
        self._queue.append(request)
        self._maybe_start_sync()

    def flush(self, callback: Optional[Callback] = None) -> None:
        """Force everything buffered (async region) onto the platter.

        An empty buffer means there is nothing to make durable: no
        platter sync is scheduled (and no forced write is counted) —
        the callback fires on the next kernel tick, after anything
        already queued for the current instant.
        """
        if not self.volatile:
            if callback is not None:
                incarnation = self._incarnation
                def complete() -> None:
                    if incarnation == self._incarnation:
                        callback()
                self.sim.post(0.0, complete)
            return
        staged = self.volatile
        self.volatile = []
        def on_durable() -> None:
            self.durable.extend(staged)
            self.durable_version += 1
            if callback is not None:
                callback()
        request = WriteRequest(None, on_durable, True, self.sim.now)
        self.forced_writes += 1
        self._queue.append(request)
        self._maybe_start_sync()

    # ------------------------------------------------------------------
    # sync engine (group commit)
    # ------------------------------------------------------------------
    def _maybe_start_sync(self) -> None:
        if self._busy or not self._queue:
            return
        limit = self.profile.max_batch
        batch = self._queue if limit is None else self._queue[:limit]
        self._queue = [] if limit is None else self._queue[limit:]
        self._busy = True
        self.syncs += 1
        incarnation = self._incarnation
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, self.node, "disk.sync",
                             batch=len(batch))
        self.sim.post(self.profile.forced_write_latency,
                      self._sync_done, batch, incarnation)

    def _sync_done(self, batch: List[WriteRequest],
                   incarnation: int) -> None:
        if incarnation != self._incarnation:
            return  # disk crashed while syncing; batch lost
        self._busy = False
        self.durable_version += 1
        now = self.sim.now
        histogram = self._h_sync_wait
        for request in batch:
            request.done = True
            if request.replace:
                self.durable = list(request.payload)
            elif request.payload is not None:
                self.durable.append(request.payload)
            wait = now - request.issued_at
            self.total_sync_wait += wait
            if histogram is not None:
                # Inlined Histogram.observe: one sync per forced write
                # per node makes this the hottest storage instrument.
                histogram.counts[bisect_left(histogram.bounds, wait)] += 1
                histogram.sum += wait
                histogram.count += 1
        # Start the next batch before callbacks so re-entrant writes
        # join a later batch rather than racing this one.
        self._maybe_start_sync()
        for request in batch:
            if request.callback is not None:
                request.callback()

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure: cache and in-flight syncs are lost; durable
        contents survive.  Pending callbacks never fire."""
        self._incarnation += 1
        self._busy = False
        self._queue = []
        self.volatile = []

    def recover(self) -> List[Any]:
        """Return the durable contents (the recovery scan)."""
        return list(self.durable)

    @property
    def mean_sync_wait(self) -> float:
        done = self.forced_writes
        return self.total_sync_wait / done if done else 0.0
