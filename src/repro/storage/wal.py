"""Write-ahead log over the simulated disk.

The replication engine journals actions (its ``ongoingQueue``), ordering
decisions, and membership records.  Records are typed so the recovery
scan can rebuild exactly the state the paper's Recover procedure
(CodeSegment A.13) expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from .disk import SimulatedDisk


@dataclass(frozen=True)
class LogRecord:
    """A typed WAL entry."""

    kind: str
    data: Any

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"LogRecord({self.kind})"


class WriteAheadLog:
    """Append-only typed log with forced or buffered appends."""

    def __init__(self, disk: SimulatedDisk):
        self.disk = disk

    def append(self, kind: str, data: Any,
               callback: Optional[Callable[[], None]] = None,
               forced: bool = True) -> None:
        """Append one record; ``callback`` fires when it is on stable
        storage (or buffered, if ``forced`` is False)."""
        self.disk.write(LogRecord(kind, data), callback=callback,
                        forced=forced)

    def sync(self, callback: Optional[Callable[[], None]] = None) -> None:
        """Flush buffered records and wait for platter sync."""
        self.disk.flush(callback)

    def rewrite(self, records: List[LogRecord],
                callback: Optional[Callable[[], None]] = None) -> None:
        """Atomically replace the log with ``records`` (compaction)."""
        self.disk.rewrite(list(records), callback)

    @property
    def durable_size(self) -> int:
        """Number of records currently on stable storage."""
        return len(self.disk.durable)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> List[LogRecord]:
        """All durable records in append order."""
        return [r for r in self.disk.recover() if isinstance(r, LogRecord)]

    def recover_kind(self, kind: str) -> Iterator[LogRecord]:
        for record in self.recover():
            if record.kind == kind:
                yield record

    def last_of_kind(self, kind: str) -> Optional[LogRecord]:
        result: Optional[LogRecord] = None
        for record in self.recover():
            if record.kind == kind:
                result = record
        return result
