"""Write-ahead log over the simulated disk.

The replication engine journals actions (its ``ongoingQueue``), ordering
decisions, and membership records.  Records are typed so the recovery
scan can rebuild exactly the state the paper's Recover procedure
(CodeSegment A.13) expects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, \
    NamedTuple, Optional

from .disk import SimulatedDisk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability


class LogRecord(NamedTuple):
    """A typed WAL entry.

    A NamedTuple: one is allocated per journaled action on the hot
    apply path, and tuple construction stays out of the interpreter.
    """

    kind: str
    data: Any

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"LogRecord({self.kind})"


class WriteAheadLog:
    """Append-only typed log with forced or buffered appends.

    Recovery queries (:meth:`recover`, :meth:`recover_kind`,
    :meth:`last_of_kind`) are served from a typed index built in a
    single scan of the durable contents and cached against the disk's
    ``durable_version``, so a recovery that reads several kinds — and a
    checkpoint path that asks repeatedly — pays for one scan, not one
    per query.
    """

    def __init__(self, disk: SimulatedDisk,
                 obs: Optional["Observability"] = None,
                 node: Any = None):
        self.disk = disk
        self._index_version = -1
        self._records: List[LogRecord] = []
        self._by_kind: Dict[str, List[LogRecord]] = {}
        # Native counts on the hot path; the registry mirrors them at
        # collection time only (appends run once per journaled record,
        # so even one instrument call here would show up in the
        # obs_overhead gate).
        self.appends = 0
        self.rewrites = 0
        if obs is not None and obs.enabled:
            registry = obs.registry
            label = disk.node if node is None else node
            registry.counter_callback(
                "repro_wal_appends_total",
                lambda: self.appends,
                "Records appended to the write-ahead log.",
                ("server",), (label,))
            registry.counter_callback(
                "repro_wal_rewrites_total",
                lambda: self.rewrites,
                "Log compactions (atomic rewrites).",
                ("server",), (label,))
            registry.gauge_callback(
                "repro_wal_durable_records",
                lambda: self.durable_size,
                "Records currently on stable storage.",
                ("server",), (label,))

    def _index(self) -> Dict[str, List[LogRecord]]:
        version = self.disk.durable_version
        if version != self._index_version:
            records: List[LogRecord] = []
            by_kind: Dict[str, List[LogRecord]] = {}
            for record in self.disk.durable:
                if isinstance(record, LogRecord):
                    records.append(record)
                    bucket = by_kind.get(record.kind)
                    if bucket is None:
                        bucket = by_kind[record.kind] = []
                    bucket.append(record)
            self._records = records
            self._by_kind = by_kind
            self._index_version = version
        return self._by_kind

    def append(self, kind: str, data: Any,
               callback: Optional[Callable[[], None]] = None,
               forced: bool = True) -> None:
        """Append one record; ``callback`` fires when it is on stable
        storage (or buffered, if ``forced`` is False)."""
        self.appends += 1
        self.disk.write(LogRecord(kind, data), callback=callback,
                        forced=forced)

    def sync(self, callback: Optional[Callable[[], None]] = None) -> None:
        """Flush buffered records and wait for platter sync."""
        self.disk.flush(callback)

    def rewrite(self, records: List[LogRecord],
                callback: Optional[Callable[[], None]] = None) -> None:
        """Atomically replace the log with ``records`` (compaction)."""
        self.rewrites += 1
        self.disk.rewrite(list(records), callback)

    @property
    def durable_size(self) -> int:
        """Number of records currently on stable storage."""
        return len(self.disk.durable)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> List[LogRecord]:
        """All durable records in append order."""
        self._index()
        return list(self._records)

    def recover_kind(self, kind: str) -> Iterator[LogRecord]:
        """Durable records of ``kind`` in append order (indexed)."""
        return iter(self._index().get(kind, ()))

    def last_of_kind(self, kind: str) -> Optional[LogRecord]:
        """Latest durable record of ``kind``, or None (indexed)."""
        records = self._index().get(kind)
        return records[-1] if records else None
