"""Persistent key/value snapshot records over the WAL.

The engine's small persistent records — ``vulnerable``, ``yellow``,
``primComponent``, ``greenLines``, ``redCut`` — are stored as latest-
value-wins keys.  A ``put`` journals the new value; recovery replays the
log and keeps the last durable value per key.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Optional

from .wal import WriteAheadLog

_KIND = "kv"


class StableStore:
    """Latest-value-wins persistent map with explicit sync points.

    ``put`` updates the in-memory view immediately and journals the
    change as a buffered write; :meth:`sync` forces everything written
    so far to the platter — this is the engine's ``** sync to disk``.
    Values are deep-copied on write so later in-place mutation of live
    engine structures cannot retroactively alter "what was on disk".
    """

    def __init__(self, wal: WriteAheadLog):
        self.wal = wal
        self._view: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Stage ``key = value`` (buffered; durable at the next sync)."""
        value = copy.deepcopy(value)
        self._view[key] = value
        self.wal.append(_KIND, (key, value), forced=False)

    def sync(self, callback: Optional[Callable[[], None]] = None) -> None:
        """Force all staged puts to stable storage."""
        self.wal.sync(callback)

    def put_sync(self, key: str, value: Any,
                 callback: Optional[Callable[[], None]] = None) -> None:
        """Convenience: ``put`` + ``sync``."""
        self.put(key, value)
        self.sync(callback)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Read the staged (in-memory) view."""
        return self._view.get(key, default)

    def items(self) -> Dict[str, Any]:
        """A copy of the staged view (used by log compaction)."""
        return copy.deepcopy(self._view)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Drop the volatile view (the disk handles its own crash)."""
        self._view = {}

    def recover(self) -> Dict[str, Any]:
        """Rebuild the durable view from the log and adopt it."""
        view: Dict[str, Any] = {}
        for record in self.wal.recover_kind(_KIND):
            key, value = record.data
            view[key] = value
        self._view = copy.deepcopy(view)
        return view
