"""Per-view total ordering and stability tracking.

Within one regular configuration, the lowest-id member acts as the
*sequencer*: it assigns consecutive sequence numbers to data messages
(per-origin in FIFO order; stamps are multicast in small batches).
Every member tracks, per view:

* which (origin, fifo_seq) data messages it holds,
* which sequence numbers are stamped and with what,
* each member's cumulative receipt acknowledgment (for stability).

A message is *deliverable* at position ``s`` when all positions below
``s`` were consumed, its stamp and payload are present, and — for SAFE
service — ``s`` is within the stability line (every view member acked
receipt of everything up to ``s``).  This is precisely the safe-delivery
guarantee the replication algorithm relies on (Section 4.1): if any
member delivers ``m`` as safe in the regular configuration, every member
holds ``m`` and will deliver it, at worst in its transitional
configuration, unless it crashes.

Delivered-and-stable prefixes are pruned (:meth:`prune_stable`) so that
memory and flush state-report sizes stay proportional to the *unstable
suffix*, not the view's lifetime.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple, final

from .types import DataMsg, ServiceLevel, StateReportMsg, ViewId

Key = Tuple[int, int]  # (origin, fifo_seq)

# Shared empty result for the (dominant) nothing-deliverable case;
# callers only iterate over it.
_NOTHING: List[Tuple[int, DataMsg]] = []

# Hoisted: ``service is _SAFE`` replaces an enum-property call on the
# delivery hot loop (only SAFE needs stability).
_SAFE = ServiceLevel.SAFE


@final
class ViewOrdering:
    """Ordering/stability bookkeeping for one regular configuration."""

    def __init__(self, view_id: ViewId, members: FrozenSet[int], me: int,
                 mode: str = "sequencer") -> None:
        self.view_id = view_id
        self.members = frozenset(members)
        self.me = me
        self.mode = mode
        self.sequencer = min(self.members)
        # Hoisted role test: read on every data ingestion, fixed for
        # the lifetime of the view.
        self._stamping = mode == "sequencer" and me == self.sequencer
        # -- data plane --------------------------------------------------
        self.data: Dict[Key, DataMsg] = {}
        self.stamp_of: Dict[Key, int] = {}
        self.key_at: Dict[int, Key] = {}
        self.max_stamp = -1
        # duplicate filter for pruned history: per-origin fifo floor
        self.fifo_floor: Dict[int, int] = {m: 0 for m in self.members}
        # -- sequencer role ----------------------------------------------
        self.next_seq = 0
        self.pending_stamp: List[Key] = []
        # per-origin next fifo_seq to stamp (stamps are FIFO per origin)
        self.fifo_stamp_next: Dict[int, int] = {m: 0 for m in self.members}
        # -- fifo send counter -------------------------------------------
        self.fifo_out = 0
        # -- receipt / stability ------------------------------------------
        self.ack_seq = -1            # my cumulative contiguous receipt
        self.acks: Dict[int, int] = {m: -1 for m in self.members}
        self.last_acked_sent = -1
        # cached min(acks.values()); recomputed only when the member
        # holding the minimum advances, so the per-delivery stability
        # check is O(1) instead of O(members)
        self._stability = -1
        # -- delivery ------------------------------------------------------
        self.delivered_seq = -1
        self.pruned_below = 0        # seqs < pruned_below were discarded
        # -- incremental gap tracking (NACK checks) ------------------------
        # stamped seqs whose payload we lack
        self._missing: Set[int] = set()
        # |{s in key_at : s > delivered_seq}| — with max_stamp and
        # delivered_seq this answers has_stamp_gap without a range scan
        self._stamped_undelivered = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add_data(self, msg: DataMsg) -> bool:
        """Store a data message; returns True if it is new."""
        key = (msg.origin, msg.fifo_seq)
        if key in self.data:
            return False
        if msg.fifo_seq < self.fifo_floor.get(msg.origin, 0):
            return False  # duplicate of an already-pruned message
        self.data[key] = msg
        seq = self.stamp_of.get(key)
        if seq is not None:
            self._missing.discard(seq)
        if self._stamping:
            self._stamp_contiguous(msg.origin)
        self._advance_ack()
        return True

    def _stamp_contiguous(self, origin: int) -> None:
        """(Sequencer) queue origin's contiguous unstamped fifo prefix."""
        nxt = self.fifo_stamp_next.get(origin, 0)
        while (origin, nxt) in self.data:
            key = (origin, nxt)
            if key not in self.stamp_of:
                self.pending_stamp.append(key)
            nxt += 1
        self.fifo_stamp_next[origin] = nxt

    def take_stamp_batch(self) -> List[Tuple[int, int, int]]:
        """(Sequencer) assign sequence numbers to pending data."""
        batch: List[Tuple[int, int, int]] = []
        for key in self.pending_stamp:
            if key in self.stamp_of:
                continue
            seq = self.next_seq
            self.next_seq += 1
            self._record_stamp(seq, key)
            batch.append((seq, key[0], key[1]))
        self.pending_stamp = []
        self._advance_ack()
        return batch

    def take_own_stamp_batch(self, next_seq: int
                             ) -> List[Tuple[int, int, int]]:
        """(Token mode) stamp my own pending data from ``next_seq``.

        Called while holding the token; returns the stamp batch to
        multicast.  The caller advances the token by ``len(batch)``.
        """
        batch: List[Tuple[int, int, int]] = []
        nxt = self.fifo_stamp_next.get(self.me, 0)
        # Skip over the pruned/duplicate-filtered prefix.
        nxt = max(nxt, self.fifo_floor.get(self.me, 0))
        while (self.me, nxt) in self.data:
            key = (self.me, nxt)
            if key not in self.stamp_of:
                self._record_stamp(next_seq, key)
                batch.append((next_seq, self.me, nxt))
                next_seq += 1
            nxt += 1
        self.fifo_stamp_next[self.me] = nxt
        self._advance_ack()
        return batch

    def add_stamps(self, stamps: Tuple[Tuple[int, int, int], ...]) -> None:
        for seq, origin, fifo_seq in stamps:
            if seq < self.pruned_below:
                continue
            self._record_stamp(seq, (origin, fifo_seq))
        self._advance_ack()

    def _record_stamp(self, seq: int, key: Key) -> None:
        if seq in self.key_at:
            return
        self.key_at[seq] = key
        self.stamp_of[key] = seq
        if key not in self.data:
            self._missing.add(seq)
        if seq > self.delivered_seq:
            self._stamped_undelivered += 1
        if seq > self.max_stamp:
            self.max_stamp = seq
        if self.me != self.sequencer and seq >= self.next_seq:
            self.next_seq = seq + 1

    def add_ack(self, node: int, ack_seq: int) -> None:
        old = self.acks.get(node)
        if old is not None and ack_seq > old:
            self.acks[node] = ack_seq
            if old == self._stability:
                self._stability = min(self.acks.values())

    def _advance_ack(self) -> None:
        s = self.ack_seq + 1
        key_at = self.key_at
        data = self.data
        while True:
            key = key_at.get(s)
            if key is None or key not in data:
                break
            s += 1
        # One attribute write per call, not one per advanced position.
        if s - 1 > self.ack_seq:
            self.ack_seq = s - 1
        me = self.me
        old = self.acks.get(me, -1)
        if old < self.ack_seq:
            self.acks[me] = self.ack_seq
            if old == self._stability:
                self._stability = min(self.acks.values())

    # ------------------------------------------------------------------
    # stability & delivery
    # ------------------------------------------------------------------
    @property
    def stability_line(self) -> int:
        """Highest seq known to be received by every view member."""
        return self._stability

    def pop_deliverable(self) -> List[Tuple[int, DataMsg]]:
        """Messages deliverable now, in order; advances delivered_seq.

        Most calls find nothing to deliver (delivery is attempted after
        every ingestion), so the head position is probed before any
        allocation happens.
        """
        key_at = self.key_at
        data = self.data
        s = self.delivered_seq + 1
        key = key_at.get(s)
        if key is None or key not in data:
            return _NOTHING
        out: List[Tuple[int, DataMsg]] = []
        stable = self._stability
        while True:
            msg = data[key]
            if s > stable and msg.service is _SAFE:
                break
            out.append((s, msg))
            s += 1
            key = key_at.get(s)
            if key is None or key not in data:
                break
        delivered = len(out)
        if delivered:
            # Counters are batched: one attribute write per call
            # instead of two per delivered message.
            self.delivered_seq += delivered
            self._stamped_undelivered -= delivered
        return out

    def needs_ack(self) -> bool:
        """True when peers have not seen our latest receipt progress."""
        return self.ack_seq > self.last_acked_sent

    def note_ack_sent(self) -> None:
        self.last_acked_sent = self.ack_seq

    # ------------------------------------------------------------------
    # pruning (garbage collection of the stable, delivered prefix)
    # ------------------------------------------------------------------
    def prune_stable(self) -> int:
        """Discard messages both delivered here and stable everywhere.

        Returns the number of messages discarded.  Nothing below the
        prune point can ever be needed again: every member holds it
        (stability) and we already delivered it.
        """
        limit = min(self.delivered_seq, self._stability)
        pruned = 0
        for seq in range(self.pruned_below, limit + 1):
            key = self.key_at.pop(seq, None)
            if key is None:
                continue
            self.stamp_of.pop(key, None)
            self._missing.discard(seq)
            if self.data.pop(key, None) is not None:
                pruned += 1
            origin, fifo = key
            if fifo >= self.fifo_floor.get(origin, 0):
                self.fifo_floor[origin] = fifo + 1
        self.pruned_below = max(self.pruned_below, limit + 1)
        return pruned

    # ------------------------------------------------------------------
    # gap detection (NACK-based loss recovery)
    # ------------------------------------------------------------------
    def missing_data_seqs(self) -> List[int]:
        """Stamped positions up to max_stamp whose payload we lack.

        Tracked incrementally (a stamped seq joins the set while its
        payload is absent); a stamped-but-missing seq is always above
        the delivered prefix, so no range scan is needed.
        """
        return sorted(self._missing)

    def has_stamp_gap(self) -> bool:
        """True if some position below max_stamp has no known stamp.

        ``_stamped_undelivered`` counts known stamps above the delivered
        prefix; comparing it against the width of
        ``(delivered_seq, max_stamp]`` detects a hole in O(1).
        """
        return self._stamped_undelivered < self.max_stamp - self.delivered_seq

    def has_unstamped_foreign_data(self) -> bool:
        """(Non-sequencer) data held with no stamp for it: the stamp
        batch was lost in transit — grounds for a NACK even when no
        later stamp ever arrived (max_stamp never advanced)."""
        if self.me == self.sequencer:
            return False
        return any(key not in self.stamp_of for key in self.data)

    def retrans_items(self, seqs: List[int]) -> List[Tuple]:
        """Build retransmission payloads for stamped seqs we hold.

        Items carry the trace context so a message recovered via NACK
        keeps its causal identity at the receiver.
        """
        items: List[Tuple] = []
        for s in seqs:
            key = self.key_at.get(s)
            if key is None or key not in self.data:
                continue
            msg = self.data[key]
            items.append((s, msg.origin, msg.fifo_seq, msg.payload,
                          msg.service, msg.size, msg.trace))
        return items

    def accept_retrans(self, items: Tuple[Tuple, ...]) -> None:
        for seq, origin, fifo_seq, payload, service, size, trace in items:
            if seq < self.pruned_below:
                continue
            self._record_stamp(seq, (origin, fifo_seq))
            key = (origin, fifo_seq)
            if key not in self.data:
                self.data[key] = DataMsg(self.view_id, origin, fifo_seq,
                                         payload, service, size, trace)
            if self.key_at.get(seq) in self.data:
                self._missing.discard(seq)
        self._advance_ack()

    # ------------------------------------------------------------------
    # flush support (membership change)
    # ------------------------------------------------------------------
    def state_report(self, node: int, attempt: int) -> StateReportMsg:
        ordered = sorted(self.key_at.items())
        stamps = tuple((s, k[0], k[1]) for s, k in ordered)
        have = tuple(s for s, k in ordered if k in self.data)
        return StateReportMsg(
            node=node, attempt=attempt, old_view_id=self.view_id,
            stamps=stamps, have_data=have, ack_seq=self.ack_seq,
            stability_line=self.stability_line,
            delivered_seq=self.delivered_seq,
            old_members=tuple(sorted(self.members)))

    def unstamped_own(self) -> List[DataMsg]:
        """My own data messages never stamped (to re-submit next view)."""
        return [msg for key, msg in sorted(self.data.items())
                if key[0] == self.me and key not in self.stamp_of]

    def undelivered_stamped(self) -> List[int]:
        """Stamped seqs above the delivered prefix that we hold."""
        return [s for s in sorted(self.key_at)
                if s > self.delivered_seq and self.key_at[s] in self.data]
