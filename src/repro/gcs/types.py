"""Core types of the group communication service.

The replication engine consumes the *Extended Virtual Synchrony* (EVS)
interface: ordered message delivery plus two-stage configuration-change
notifications (transitional configuration, then regular configuration),
with the **safe delivery** guarantee of [Moser et al. 94] — the property
Section 4.1 of the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, FrozenSet, NamedTuple, Optional, Tuple

from ..net.batching import WireBatchConfig


class ServiceLevel(Enum):
    """Delivery guarantees, weakest to strongest.

    The implementation delivers everything in the view's total order, so
    RELIABLE/FIFO/CAUSAL/AGREED differ only in what they *promise*;
    SAFE additionally waits for stability (all view members received the
    message) before delivery.
    """

    RELIABLE = "reliable"
    FIFO = "fifo"
    CAUSAL = "causal"
    AGREED = "agreed"
    SAFE = "safe"

    @property
    def needs_stability(self) -> bool:
        return self is ServiceLevel.SAFE


class ViewId(NamedTuple):
    """Identifier of a regular configuration: (epoch, coordinator).

    A NamedTuple rather than a frozen dataclass: view ids are compared
    and hashed on every datagram the GCS daemon handles, and the
    C-level tuple operations keep that off the interpreter's profile.
    """

    epoch: int
    coordinator: int

    def __str__(self) -> str:
        return f"v{self.epoch}.{self.coordinator}"


@dataclass(frozen=True)
class Configuration:
    """A membership notification.

    ``transitional`` distinguishes the reduced transitional
    configuration from a regular configuration.  For a transitional
    configuration, ``view_id`` is the id of the regular configuration it
    terminates and ``members`` is the subset moving together to the next
    regular configuration.
    """

    view_id: ViewId
    members: FrozenSet[int]
    transitional: bool = False

    def __contains__(self, node: int) -> bool:
        return node in self.members

    def __str__(self) -> str:  # pragma: no cover - debug aid
        kind = "trans" if self.transitional else "reg"
        return f"{kind}({self.view_id}, {sorted(self.members)})"


@dataclass
class GcsSettings:
    """Tunable protocol timers (seconds) and sizes (bytes).

    Defaults are tuned for the paper's 100 Mbit LAN profile: safe
    delivery completes in ~2 ms, membership changes settle in a few
    hundred ms.
    """

    heartbeat_interval: float = 0.050
    failure_timeout: float = 0.200
    gather_settle: float = 0.060
    phase_timeout: float = 0.400
    stamp_window: float = 0.0004
    ack_window: float = 0.0010
    nack_timeout: float = 0.020
    use_topology_hints: bool = True
    header_size: int = 48
    stamp_entry_size: int = 16
    ack_size: int = 64
    control_size: int = 96
    # Total-order mechanism within a view: "sequencer" (coordinator
    # stamps everyone's messages; default) or "token" (a Totem-style
    # token circulates the ring; each member stamps its own pending
    # messages while holding it, and the token aggregates stability).
    ordering_mode: str = "sequencer"
    token_hold: float = 0.0001
    token_timeout: float = 0.5
    # Wire batching (repro.net.batching): disabled by default
    # (max_batch=1), in which case no batcher is constructed and the
    # datapath is bit-identical to the unbatched protocol.
    wire: WireBatchConfig = field(default_factory=WireBatchConfig)


# ----------------------------------------------------------------------
# wire messages (GCS-internal protocol)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DataMsg:
    """Application payload multicast by its origin within a view.

    ``trace`` is the distributed-tracing context: a deterministic
    64-bit id assigned at submission (0 = untraced) that rides the
    message — including retransmissions and next-view resubmission —
    so per-node flight-recorder events can be joined into one causal
    timeline by ``repro-trace``.  It is mirrored into the binary wire
    frame (:mod:`repro.net.codec`, wire version 2) rather than buried
    in the pickled payload.
    """

    view_id: ViewId
    origin: int
    fifo_seq: int
    payload: object
    service: ServiceLevel
    size: int
    trace: int = 0


@dataclass(frozen=True)
class StampMsg:
    """Sequencer order stamps: tuples of (seq, origin, fifo_seq)."""

    view_id: ViewId
    stamps: Tuple[Tuple[int, int, int], ...]


@dataclass(frozen=True)
class AckMsg:
    """Cumulative stability acknowledgment: ``node`` has stamp+data for
    every sequence number <= ``ack_seq`` in ``view_id``."""

    view_id: ViewId
    node: int
    ack_seq: int


@dataclass(frozen=True)
class TokenMsg:
    """The circulating ordering token (token mode).

    next_seq   the next global sequence number to assign
    acks       every member's cumulative receipt as last seen on the
               ring — the token is the stability-aggregation vehicle
    """

    view_id: ViewId
    next_seq: int
    acks: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class HeartbeatMsg:
    """Liveness + piggybacked stability ack.

    ``group`` namespaces the heartbeat when several replication groups
    share one transport (the shard fabric): daemons drop foreign-group
    heartbeats, so they can never feed failure detection or trigger a
    cross-group membership merge.
    """

    node: int
    view_id: Optional[ViewId]
    joined: bool
    ack_seq: int
    group: int = 0


@dataclass(frozen=True)
class NackMsg:
    """Request retransmission of missing stamps/data in a live view."""

    view_id: ViewId
    node: int
    missing_data: Tuple[int, ...]
    want_stamps_from: int


@dataclass(frozen=True)
class RetransDataMsg:
    """Retransmitted stamped messages: (seq, origin, fifo_seq, payload,
    service, size) tuples."""

    view_id: ViewId
    items: Tuple[Tuple, ...]


# -- reliable point-to-point channel messages ---------------------------
# (defined here rather than in repro.gcs.channel so the wire codec — a
# compiled leaf module — depends only on data types, never on the
# channel's Actor machinery)

@dataclass(frozen=True)
class ChanData:
    """A sequenced channel payload.

    ``trace`` carries the distributed-tracing context of the payload
    (0 = untraced); it survives go-back-N retransmission and is packed
    into the binary wire frame alongside the sequence number.
    """

    src: int
    seq: int
    payload: Any
    size: int
    trace: int = 0


@dataclass(frozen=True)
class ChanAck:
    """Cumulative ack: receiver got everything below ``ack_seq``."""

    src: int
    ack_seq: int


# -- membership protocol messages --------------------------------------

@dataclass(frozen=True)
class GatherMsg:
    """Membership round announcement."""

    node: int
    attempt: int
    joined: bool


@dataclass(frozen=True)
class ProposeMsg:
    """Coordinator's proposed membership for this attempt."""

    coordinator: int
    attempt: int
    members: Tuple[int, ...]


@dataclass(frozen=True)
class StateReportMsg:
    """A member's old-view delivery state, sent to the coordinator."""

    node: int
    attempt: int
    old_view_id: Optional[ViewId]
    stamps: Tuple[Tuple[int, int, int], ...]   # (seq, origin, fifo_seq)
    have_data: Tuple[int, ...]                 # seqs with payload held
    ack_seq: int                               # own cumulative receipt
    stability_line: int                        # known min ack across view
    delivered_seq: int                         # delivered prefix (regular)
    old_members: Tuple[int, ...]


@dataclass(frozen=True)
class FlushPlanMsg:
    """Coordinator's per-old-view flush plan, broadcast to members."""

    coordinator: int
    attempt: int
    old_view_id: Optional[ViewId]
    union_stamps: Tuple[Tuple[int, int, int], ...]
    data_available: Tuple[int, ...]
    stable_line: int


@dataclass(frozen=True)
class FlushRetransCmd:
    """Coordinator tells ``holder`` to send ``seqs`` of ``old_view_id``
    to ``to_node``."""

    coordinator: int
    attempt: int
    holder: int
    to_node: int
    old_view_id: ViewId
    seqs: Tuple[int, ...]


@dataclass(frozen=True)
class FlushDoneMsg:
    """Member signals it holds everything its flush plan requires."""

    node: int
    attempt: int


@dataclass(frozen=True)
class InstallMsg:
    """Coordinator commits the new regular configuration."""

    coordinator: int
    attempt: int
    new_view_id: ViewId
    members: Tuple[int, ...]
    # node -> members of the new view coming from node's old view
    trans_sets: Tuple[Tuple[int, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class LeaveMsg:
    """Voluntary group leave announcement."""

    node: int
