"""Spread-like facade over the daemon.

A thin convenience wrapper giving the replication engine (or any other
consumer) a process-group style API: connect, join, multicast with a
service level, receive callbacks.  It exists to mirror the layering of
the original system — the engine was written against the Spread toolkit
API, not against daemon internals.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .daemon import GcsDaemon, GcsListener
from .types import Configuration, ServiceLevel


class GroupChannel(GcsListener):
    """A connection to the replicated process group.

    Callbacks (assign before :meth:`join`):

    message_handler(payload, origin, in_transitional, service)
    conf_handler(configuration)      — regular AND transitional confs
    """

    def __init__(self, daemon: GcsDaemon) -> None:
        self.daemon = daemon
        self.message_handler: Optional[Callable] = None
        self.conf_handler: Optional[Callable[[Configuration], None]] = None
        daemon.listener = self

    # -- membership -----------------------------------------------------
    def join(self) -> None:
        self.daemon.join()

    def leave(self) -> None:
        self.daemon.leave()

    @property
    def current_view(self) -> Optional[Configuration]:
        return self.daemon.view

    # -- messaging --------------------------------------------------------
    def multicast(self, payload: Any,
                  service: ServiceLevel = ServiceLevel.SAFE,
                  size: int = 200, trace: int = 0) -> None:
        self.daemon.multicast(payload, service, size, trace)

    # -- GcsListener ------------------------------------------------------
    def on_regular_conf(self, conf: Configuration) -> None:
        if self.conf_handler is not None:
            self.conf_handler(conf)

    def on_transitional_conf(self, conf: Configuration) -> None:
        if self.conf_handler is not None:
            self.conf_handler(conf)

    def on_message(self, payload: Any, origin: int,
                   in_transitional: bool, service: ServiceLevel) -> None:
        if self.message_handler is not None:
            self.message_handler(payload, origin, in_transitional, service)
