"""Reliable FIFO point-to-point channels (ARQ over the datagram fabric).

The group-communication daemon recovers losses through its own NACK and
flush machinery; these channels serve *out-of-group* communication — in
this reproduction, the database transfer from a representative peer to a
joining replica (Section 5.1), which the paper performs over a direct
connection rather than through the replicated group.

Standard go-back-N: cumulative acks, retransmission timer, per-peer send
windows.  Duplicates are filtered, delivery is in send order.

With wire batching (:mod:`repro.net.batching`) the endpoint routes
sends through a shared :class:`~repro.net.batching.WireBatcher` and
coalesces acks: instead of one ``ChanAck`` per received payload, a
cumulative ack is owed and either *piggybacks* on the next outgoing
``ChanData`` to that peer (sharing its frame) or rides a short
``ack_delay`` timer.  With the defaults (no batcher, ``ack_delay=0``)
the datapath is bit-identical to the classic one-ack-per-payload ARQ.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..net import Datagram
from ..net.batching import Batch, WireBatcher
from ..sim import Actor
# Re-exported for backward compatibility: the message dataclasses
# moved to repro.gcs.types so the compiled wire codec can import them
# without pulling in this module's Actor machinery.
from .types import ChanAck as ChanAck
from .types import ChanData as ChanData

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..runtime.base import Runtime, Transport


class _PeerState:
    """Per-peer send/receive bookkeeping."""

    __slots__ = ("next_out", "acked", "outstanding", "next_in", "buffer",
                 "acks_owed")

    def __init__(self) -> None:
        self.next_out = 0
        self.acked = 0
        self.outstanding: Dict[int, Tuple[Any, int, int]] = {}
        self.next_in = 0
        self.buffer: Dict[int, Tuple[Any, int]] = {}
        # Payloads received since the last ChanAck went out (ack
        # coalescing: one cumulative ack covers them all).
        self.acks_owed = 0


class ReliableChannelEndpoint(Actor):
    """One node's endpoint for reliable unicast to any peer.

    This endpoint shares the node's network attachment: the owner
    dispatches ChanData/ChanAck datagrams to :meth:`on_datagram`.
    """

    def __init__(self, sim: "Runtime", node: int, network: "Transport",
                 on_message: Callable[[int, Any], None],
                 retransmit_interval: float = 0.05,
                 obs: Optional["Observability"] = None,
                 batcher: Optional[WireBatcher] = None,
                 ack_delay: float = 0.0) -> None:
        super().__init__(sim, name=f"chan{node}")
        self.node = node
        self.network = network
        self.on_message = on_message
        self.retransmit_interval = retransmit_interval
        self.batcher = batcher
        self.ack_delay = ack_delay
        self._peers: Dict[int, _PeerState] = {}
        # Native counts on the datapath; mirrored into the registry at
        # collection time (one inc per message would be measurable on
        # the asyncio runtime, where every protocol message crosses a
        # channel).
        self.sends = 0
        self.retransmits = 0
        self.deliveries = 0
        # Acks the coalescing window absorbed: payloads covered by a
        # cumulative ChanAck beyond the first (saved datagrams).
        self.acks_coalesced = 0
        if obs is not None and obs.enabled:
            registry = obs.registry
            registry.counter_callback(
                "repro_channel_sends_total",
                lambda: self.sends,
                "Payloads queued on reliable point-to-point channels.",
                ("server",), (node,))
            registry.counter_callback(
                "repro_channel_retransmits_total",
                lambda: self.retransmits,
                "Go-back-N retransmissions on reliable channels.",
                ("server",), (node,))
            registry.counter_callback(
                "repro_channel_deliveries_total",
                lambda: self.deliveries,
                "In-order payload deliveries on reliable channels.",
                ("server",), (node,))
            registry.counter_callback(
                "repro_wire_acks_coalesced",
                lambda: self.acks_coalesced,
                "ChanAck datagrams saved by cumulative-ack coalescing.",
                ("server",), (node,))
            registry.gauge_callback(
                "repro_channel_unacked",
                lambda: sum(len(s.outstanding)
                            for s in self._peers.values()),
                "Unacknowledged payloads across all peers.",
                ("server",), (node,))
        self._retry = self.make_timer("retry", self._retransmit,
                                      retransmit_interval, periodic=True)
        self._ack_flush = self.make_timer("ack_flush", self._flush_acks,
                                          ack_delay if ack_delay > 0
                                          else 0.001)
        self._running = False

    def start(self) -> None:
        self._running = True
        self._retry.start()

    def stop(self) -> None:
        self._running = False
        self.cancel_all()
        self._peers = {}

    def _peer(self, peer: int) -> _PeerState:
        if peer not in self._peers:
            self._peers[peer] = _PeerState()
        return self._peers[peer]

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _transmit(self, peer: int, payload: Any, size: int) -> None:
        """One wire send, through the shared batcher when present."""
        if self.batcher is not None:
            self.batcher.send(peer, payload, size)
        else:
            self.network.send(self.node, peer, payload, size)

    def send(self, peer: int, payload: Any, size: int = 200,
             trace: int = 0) -> None:
        """Queue ``payload`` for reliable in-order delivery to ``peer``."""
        if not self._running:
            return
        state = self._peer(peer)
        seq = state.next_out
        state.next_out += 1
        state.outstanding[seq] = (payload, size, trace)
        self.sends += 1
        if state.acks_owed:
            # Piggyback the owed cumulative ack on this reverse
            # traffic: through the batcher both ride one frame.
            self._emit_ack(peer, state)
        self._transmit(peer,
                       ChanData(self.node, seq, payload, size, trace),
                       size)

    def _retransmit(self) -> None:
        for peer, state in self._peers.items():
            for seq in sorted(state.outstanding):
                payload, size, trace = state.outstanding[seq]
                self.retransmits += 1
                self._transmit(
                    peer, ChanData(self.node, seq, payload, size, trace),
                    size)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_datagram(self, datagram: Datagram) -> bool:
        """Handle a channel datagram; returns False if not ours."""
        payload = datagram.payload
        if isinstance(payload, ChanData):
            self._on_data(payload)
            return True
        if isinstance(payload, ChanAck):
            self._on_ack(payload)
            return True
        if isinstance(payload, Batch):
            # Standalone endpoints (attached directly to the fabric)
            # unwrap coalesced frames themselves; when owned by a
            # daemon, the daemon unwraps and re-dispatches instead.
            handled = False
            for sub, _size in payload.entries:
                if isinstance(sub, ChanData):
                    self._on_data(sub)
                    handled = True
                elif isinstance(sub, ChanAck):
                    self._on_ack(sub)
                    handled = True
            return handled
        return False

    def _emit_ack(self, peer: int, state: _PeerState) -> None:
        """Send the cumulative ack owed to ``peer``."""
        self.acks_coalesced += state.acks_owed - 1
        state.acks_owed = 0
        self._transmit(peer, ChanAck(self.node, state.next_in), 64)

    def _flush_acks(self) -> None:
        for peer, state in self._peers.items():
            if state.acks_owed:
                self._emit_ack(peer, state)

    def _on_data(self, msg: ChanData) -> None:
        if not self._running:
            return
        state = self._peer(msg.src)
        if msg.seq >= state.next_in:
            state.buffer[msg.seq] = (msg.payload, msg.size)
        delivered = []
        while state.next_in in state.buffer:
            payload, _size = state.buffer.pop(state.next_in)
            state.next_in += 1
            delivered.append(payload)
        if self.ack_delay > 0:
            # Coalesce: owe a cumulative ack, to piggyback on the next
            # send to this peer or go out when the window closes.
            state.acks_owed += 1
            if not self._ack_flush.armed:
                self._ack_flush.start()
        else:
            self._transmit(msg.src, ChanAck(self.node, state.next_in), 64)
        self.deliveries += len(delivered)
        for payload in delivered:
            self.on_message(msg.src, payload)

    def _on_ack(self, msg: ChanAck) -> None:
        state = self._peer(msg.src)
        if msg.ack_seq > state.acked:
            state.acked = msg.ack_seq
            for seq in [s for s in state.outstanding if s < msg.ack_seq]:
                del state.outstanding[seq]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def unacked(self, peer: int) -> int:
        state = self._peers.get(peer)
        return len(state.outstanding) if state else 0
