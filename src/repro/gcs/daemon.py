"""The group communication daemon (one per node).

Provides the Extended Virtual Synchrony service the replication engine
consumes: within a regular configuration, totally ordered multicast with
FIFO/AGREED/SAFE service levels; on connectivity change, a membership
protocol that delivers a *transitional configuration*, flushes the old
view's messages under EVS rules, and installs the next *regular
configuration*.

Roles within a view:

* the lowest-id member is the **sequencer** (order stamps, batched);
* every member multicasts cumulative **stability acks** (coalesced in a
  short window) so each member tracks the safe-delivery line;
* missing data/stamps are recovered by **NACK** from peers.

Membership is a gather → propose → flush → install protocol driven by
the coordinator (lowest id of the gathered set), with attempt numbers
making restarts safe.  The flush retransmits old-view messages so that
members coming from the same old view deliver the same message set
(virtual synchrony), splits delivery at the known-stability line
(regular vs transitional delivery, Section 4.1's three cases), and
computes per-member transitional configurations.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List,
                    Optional, Set, Tuple)

from ..net import Datagram
from ..net.batching import Batch, WireBatcher
from ..sim import Actor, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..runtime.base import Runtime, Transport
from .ordering import ViewOrdering
from .types import (AckMsg, Configuration, DataMsg, FlushDoneMsg,
                    FlushPlanMsg, FlushRetransCmd, GatherMsg, GcsSettings,
                    HeartbeatMsg, InstallMsg, LeaveMsg, NackMsg, ProposeMsg,
                    RetransDataMsg, ServiceLevel, StampMsg, StateReportMsg,
                    TokenMsg, ViewId)


class GcsListener:
    """Callback interface for GCS consumers.  Subclass and override."""

    def on_regular_conf(self, conf: Configuration) -> None:
        """A new regular configuration was installed."""

    def on_transitional_conf(self, conf: Configuration) -> None:
        """The old configuration is ending; ``conf.members`` is the
        reduced membership moving together to the next regular one."""

    def on_message(self, payload: Any, origin: int,
                   in_transitional: bool,
                   service: ServiceLevel) -> None:
        """An ordered message delivery."""


class DaemonState:
    """Daemon lifecycle states (strings for cheap tracing)."""

    DOWN = "down"
    IDLE = "idle"          # running but not a group member
    OPERATIONAL = "operational"
    GATHER = "gather"
    FLUSH = "flush"

    #: Numeric codes for the state gauge (dashboards need numbers).
    CODES = {DOWN: 0, IDLE: 1, OPERATIONAL: 2, GATHER: 3, FLUSH: 4}


class GcsDaemon(Actor):
    """One node's group communication endpoint."""

    def __init__(self, sim: "Runtime", node: int, network: "Transport",
                 directory: Set[int],
                 settings: Optional[GcsSettings] = None,
                 tracer: Optional[Tracer] = None,
                 extra_dispatch: Optional[
                     Callable[[Datagram], bool]] = None,
                 obs: Optional["Observability"] = None,
                 batcher: Optional[WireBatcher] = None,
                 group: int = 0) -> None:
        super().__init__(sim, name=f"gcs{node}")
        self.node = node
        # Group namespace: N independent daemons (one replication group
        # each) can share one transport.  The per-group ``directory``
        # already keeps traffic apart; the group id additionally tags
        # heartbeats so a stray foreign-group datagram (misconfigured
        # directory, address reuse) can never trigger a cross-group
        # membership merge.
        self.group = group
        self.network = network
        self.directory = directory          # registry of this group's nodes
        self.settings = settings or GcsSettings()
        self.tracer = tracer or Tracer(enabled=False)
        self.extra_dispatch = extra_dispatch
        self.listener: GcsListener = GcsListener()
        # Wire batching: data-plane traffic (data, stamps, acks, nacks,
        # retransmissions, the token) coalesces through the batcher;
        # control-plane traffic (heartbeats, membership) stays direct —
        # it is rare and latency-sensitive.  A standalone daemon builds
        # its own batcher; Replica passes one shared with the channel
        # endpoint so their frames coalesce together.
        if batcher is None and self.settings.wire.enabled:
            batcher = WireBatcher(sim, node, network, self.settings.wire,
                                  obs=obs)
        self.batcher = batcher

        self.state = DaemonState.DOWN
        self.joined = False
        self.view: Optional[Configuration] = None
        self.ordering: Optional[ViewOrdering] = None
        self.max_epoch_seen = 0

        # membership round state
        self.attempt = 0
        self._perceived: Set[int] = set()
        self._round_coordinator: Optional[int] = None
        self._proposal_members: Tuple[int, ...] = ()
        self._reports: Dict[int, StateReportMsg] = {}
        self._my_plan: Optional[FlushPlanMsg] = None
        self._flush_done: Set[int] = set()
        self._sent_done = False

        # buffered application sends while membership is in progress
        self._outbox: List[Tuple[Any, ServiceLevel, int, int]] = []

        self._last_heard: Dict[int, float] = {}
        self._known_joined: Set[int] = set()
        self._nack_signature: Tuple = ()

        s = self.settings
        self._hb_timer = self.make_timer("heartbeat", self._send_heartbeat,
                                         s.heartbeat_interval, periodic=True)
        self._fd_timer = self.make_timer("fd", self._failure_check,
                                         s.failure_timeout / 2,
                                         periodic=True)
        self._stamp_timer = self.make_timer("stamp", self._flush_stamps,
                                            s.stamp_window)
        self._ack_timer = self.make_timer("ack", self._flush_ack,
                                          s.ack_window)
        self._gather_announce = self.make_timer(
            "gather_announce", self._announce_gather,
            s.gather_settle / 2, periodic=True)
        self._settle_timer = self.make_timer("settle", self._gather_settled,
                                             s.gather_settle)
        self._phase_timer = self.make_timer("phase", self._phase_timeout,
                                            s.phase_timeout)
        self._nack_timer = self.make_timer("nack", self._nack_check,
                                           s.nack_timeout, periodic=True)
        # token-mode state
        self._last_token_seen = 0.0
        self._token_watch = self.make_timer("token_watch",
                                            self._token_watch_check,
                                            s.token_timeout / 2,
                                            periodic=True)

        # statistics
        self.messages_multicast = 0
        self.deliveries = 0
        self.views_installed = 0
        self._c_gathers = None
        if obs is not None and obs.enabled:
            registry = obs.registry
            self._c_gathers = registry.counter(
                "repro_gcs_gather_rounds_total",
                "Membership gather rounds entered.",
                ("server",)).labels(node)
            for name, help, fn in (
                    ("repro_gcs_messages_multicast",
                     "Application messages multicast by the daemon.",
                     lambda: self.messages_multicast),
                    ("repro_gcs_deliveries",
                     "Ordered message deliveries to the application.",
                     lambda: self.deliveries),
                    ("repro_gcs_views_installed",
                     "Group views installed.",
                     lambda: self.views_installed),
                    ("repro_gcs_outbox_depth",
                     "Application sends buffered during membership "
                     "changes.", lambda: len(self._outbox)),
                    ("repro_gcs_state",
                     "Daemon lifecycle state (0=down 1=idle "
                     "2=operational 3=gather 4=flush).",
                     lambda: DaemonState.CODES.get(self.state, -1))):
                registry.gauge_callback(name, fn, help,
                                        ("server",), (node,))

        # O(1) payload dispatch (bound methods, keyed by exact type) —
        # replaces a linear isinstance chain on the hottest receive path
        self._dispatch: Dict[type, Callable[[Any], None]] = {
            DataMsg: self._on_data,
            TokenMsg: self._on_token,
            StampMsg: self._on_stamps,
            AckMsg: self._on_ack,
            HeartbeatMsg: self._on_heartbeat,
            NackMsg: self._on_nack,
            RetransDataMsg: self._on_retrans,
            GatherMsg: self._on_gather,
            ProposeMsg: self._on_propose,
            StateReportMsg: self._on_report,
            FlushPlanMsg: self._on_plan,
            FlushRetransCmd: self._on_retrans_cmd,
            FlushDoneMsg: self._on_flush_done,
            InstallMsg: self._on_install,
            LeaveMsg: self._on_leave,
        }

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        """Boot the daemon (not yet a group member)."""
        self.network.attach(self.node, self._on_datagram)
        self.state = DaemonState.IDLE
        self._hb_timer.start()
        self._fd_timer.start()
        self._nack_timer.start()
        if self.settings.ordering_mode == "token":
            self._token_watch.start()

    def join(self) -> None:
        """Join the replication group; triggers a membership round."""
        if self.state == DaemonState.DOWN:
            raise RuntimeError("daemon not started")
        self.joined = True
        self._enter_gather(self.attempt + 1)

    def leave(self) -> None:
        """Voluntarily leave the group."""
        if self.batcher is not None:
            self.batcher.flush_all()
        if self.joined:
            self._control_multicast(
                self._other_directory(), LeaveMsg(self.node))
        self.joined = False
        self.view = None
        self.ordering = None
        self._reset_round()
        self.state = DaemonState.IDLE

    def crash(self) -> None:
        """Lose all volatile state and go silent."""
        self.cancel_all()
        if self.batcher is not None:
            # Crashed nodes go silent: buffered payloads die with them.
            self.batcher.drop_all()
        self.network.detach(self.node)
        self.state = DaemonState.DOWN
        self.joined = False
        self.view = None
        self.ordering = None
        self._reset_round()
        self._outbox = []
        self._last_heard = {}
        self._known_joined = set()

    def recover(self) -> None:
        """Restart after a crash with fresh (empty) volatile state."""
        self.start()

    # ==================================================================
    # application interface
    # ==================================================================
    def multicast(self, payload: Any,
                  service: ServiceLevel = ServiceLevel.SAFE,
                  size: int = 200, trace: int = 0) -> None:
        """Multicast ``payload`` to the current group with ``service``
        guarantees.  While a membership change is in progress the send
        is buffered and re-issued in the next regular configuration.
        ``trace`` is the payload's distributed-tracing context (0 =
        untraced); it rides the wire frame and survives buffering,
        retransmission, and next-view resubmission."""
        if not self.joined:
            raise RuntimeError(f"node {self.node} is not a group member")
        if self.state != DaemonState.OPERATIONAL or self.ordering is None:
            self._outbox.append((payload, service, size, trace))
            return
        ordering = self.ordering
        msg = DataMsg(ordering.view_id, self.node, ordering.fifo_out,
                      payload, service, size + self.settings.header_size,
                      trace)
        ordering.fifo_out += 1
        self.messages_multicast += 1
        ordering.add_data(msg)
        others = [m for m in ordering.members if m != self.node]
        if others:
            self._net_multicast(others, msg, msg.size)
        if self.node == ordering.sequencer:
            self._arm_stamp_timer()
        self._after_progress()

    # ==================================================================
    # datagram dispatch
    # ==================================================================
    def _on_datagram(self, datagram: Datagram) -> None:
        if self.state == DaemonState.DOWN:
            return
        payload = datagram.payload
        self._last_heard[datagram.src] = self.sim.now
        handler = self._dispatch.get(payload.__class__)
        if handler is not None:
            handler(payload)
        elif payload.__class__ is Batch:
            self._on_batch(datagram, payload)
        elif self.extra_dispatch is not None:
            self.extra_dispatch(datagram)

    def _on_batch(self, datagram: Datagram, batch: Batch) -> None:
        """Unwrap a coalesced frame: dispatch each payload in order, as
        if it had arrived in its own datagram."""
        for sub, size in batch.entries:
            handler = self._dispatch.get(sub.__class__)
            if handler is not None:
                handler(sub)
            elif self.extra_dispatch is not None:
                self.extra_dispatch(Datagram(datagram.src, datagram.dst,
                                             sub, size,
                                             datagram.sent_at))

    # ==================================================================
    # normal operation: data / stamps / acks
    # ==================================================================
    def _net_send(self, dst: int, payload: Any, size: int) -> None:
        """Data-plane unicast, coalesced through the batcher if any."""
        if self.batcher is not None:
            self.batcher.send(dst, payload, size)
        else:
            self.network.send(self.node, dst, payload, size)

    def _net_multicast(self, dsts: List[int], payload: Any,
                       size: int) -> None:
        """Data-plane multicast, coalesced through the batcher if any."""
        if self.batcher is not None:
            self.batcher.multicast(dsts, payload, size)
        else:
            self.network.multicast(self.node, dsts, payload, size)

    def _current_view_msg(self, view_id: ViewId) -> bool:
        return self.ordering is not None and self.ordering.view_id == view_id

    def _on_data(self, msg: DataMsg) -> None:
        self._note_epoch(msg.view_id)
        if not self._current_view_msg(msg.view_id):
            return
        assert self.ordering is not None
        if self.ordering.add_data(msg):
            if self.node == self.ordering.sequencer:
                self._arm_stamp_timer()
            self._after_progress()

    def _on_stamps(self, msg: StampMsg) -> None:
        self._note_epoch(msg.view_id)
        if not self._current_view_msg(msg.view_id):
            return
        assert self.ordering is not None
        self.ordering.add_stamps(msg.stamps)
        self._after_progress()

    def _on_ack(self, msg: AckMsg) -> None:
        ordering = self.ordering
        if ordering is None or ordering.view_id != msg.view_id:
            return
        # Inlined ViewOrdering.add_ack (acks outnumber every other
        # message kind; keep in sync with the method).  An ack can only
        # unblock delivery by advancing the stability line; every
        # data/stamp/retrans ingestion path attempts delivery itself,
        # so an ack that moved nothing can be dropped without looking
        # at the queue head.
        acks = ordering.acks
        old = acks.get(msg.node)
        if old is not None and msg.ack_seq > old:
            acks[msg.node] = msg.ack_seq
            if old == ordering._stability:
                ordering._stability = stable = min(acks.values())
                if stable != old:
                    self._try_deliver()

    def _arm_stamp_timer(self) -> None:
        if self.settings.ordering_mode != "sequencer":
            return
        if (self.ordering is not None and self.ordering.pending_stamp
                and not self._stamp_timer.armed):
            self._stamp_timer.start()

    def _flush_stamps(self) -> None:
        if (self.state != DaemonState.OPERATIONAL
                or self.ordering is None
                or self.node != self.ordering.sequencer):
            return
        batch = self.ordering.take_stamp_batch()
        if not batch:
            return
        msg = StampMsg(self.ordering.view_id, tuple(batch))
        size = (self.settings.header_size
                + self.settings.stamp_entry_size * len(batch))
        others = [m for m in self.ordering.members if m != self.node]
        if others:
            self._net_multicast(others, msg, size)
        self._after_progress()

    def _after_progress(self) -> None:
        """Common post-ingestion step: ack coalescing + delivery."""
        if self.ordering is None:
            return
        if (self.settings.ordering_mode == "sequencer"
                and self.ordering.needs_ack()
                and not self._ack_timer.armed):
            self._ack_timer.start()
        self._try_deliver()

    def _flush_ack(self) -> None:
        if self.ordering is None or not self.ordering.needs_ack():
            return
        ordering = self.ordering
        msg = AckMsg(ordering.view_id, self.node, ordering.ack_seq)
        ordering.note_ack_sent()
        others = [m for m in ordering.members if m != self.node]
        if others:
            self._net_multicast(others, msg, self.settings.ack_size)
        self._try_deliver()
        if self.state == DaemonState.OPERATIONAL:
            ordering.prune_stable()

    def _try_deliver(self) -> None:
        ordering = self.ordering
        if self.state != DaemonState.OPERATIONAL or ordering is None:
            return
        # Inline head probe: most attempts find nothing deliverable,
        # and this skips the pop_deliverable call entirely.
        key = ordering.key_at.get(ordering.delivered_seq + 1)
        if key is None or key not in ordering.data:
            return
        for _seq, msg in ordering.pop_deliverable():
            self.deliveries += 1
            self.listener.on_message(msg.payload, msg.origin,
                                     in_transitional=False,
                                     service=msg.service)

    # ==================================================================
    # NACK-based loss recovery
    # ==================================================================
    def _nack_check(self) -> None:
        if self.state != DaemonState.OPERATIONAL or self.ordering is None:
            return
        missing = tuple(self.ordering.missing_data_seqs()[:64])
        want_stamps = (self.ordering.delivered_seq + 1
                       if (self.ordering.has_stamp_gap()
                           or self.ordering.has_unstamped_foreign_data())
                       else -1)
        signature = (self.ordering.view_id, missing, want_stamps)
        if not missing and want_stamps < 0:
            self._nack_signature = ()
            return
        if signature != self._nack_signature:
            # First observation: give the normal path one more period.
            self._nack_signature = signature
            return
        nack = NackMsg(self.ordering.view_id, self.node, missing,
                       want_stamps)
        if self.settings.ordering_mode == "token":
            # No single member is guaranteed to hold everything: ask
            # the group (responders reply only with what they hold).
            others = [m for m in self.ordering.members if m != self.node]
            if others:
                self._net_multicast(others, nack,
                                    self.settings.control_size)
            return
        target = self.ordering.sequencer
        if target == self.node:
            # The sequencer asks the member with the highest ack.
            candidates = [(ack, m) for m, ack in self.ordering.acks.items()
                          if m != self.node]
            if not candidates:
                return
            target = max(candidates)[1]
        self._net_send(target, nack, self.settings.control_size)

    def _on_nack(self, msg: NackMsg) -> None:
        if not self._current_view_msg(msg.view_id):
            return
        assert self.ordering is not None
        items = self.ordering.retrans_items(list(msg.missing_data))
        if items:
            size = sum(item[5] for item in items)
            self._net_send(msg.node,
                           RetransDataMsg(msg.view_id, tuple(items)),
                           size)
            self.tracer.emit(self.sim.now, self.node, "gcs.retrans",
                             to=msg.node, count=len(items))
        if msg.want_stamps_from >= 0:
            stamps = tuple(
                (s, k[0], k[1])
                for s, k in sorted(self.ordering.key_at.items())
                if s >= msg.want_stamps_from)
            if stamps:
                size = (self.settings.header_size
                        + self.settings.stamp_entry_size * len(stamps))
                self._net_send(msg.node, StampMsg(msg.view_id, stamps),
                               size)

    def _on_retrans(self, msg: RetransDataMsg) -> None:
        if not self._current_view_msg(msg.view_id):
            return
        assert self.ordering is not None
        self.ordering.accept_retrans(msg.items)
        if self.state == DaemonState.FLUSH:
            self._check_flush_complete()
        else:
            self._after_progress()

    # ==================================================================
    # token-ring ordering (ordering_mode == "token")
    # ==================================================================
    def _spawn_token(self) -> None:
        """(View coordinator) create the ordering token for a new view."""
        assert self.ordering is not None
        self._last_token_seen = self.sim.now
        token = TokenMsg(self.ordering.view_id, 0, ())
        self.sim.post(self.settings.token_hold, self._on_token, token)

    def _on_token(self, msg: TokenMsg) -> None:
        if (self.state != DaemonState.OPERATIONAL
                or self.ordering is None
                or self.ordering.view_id != msg.view_id):
            return  # stale token dies; the next install spawns a new one
        self._last_token_seen = self.sim.now
        ordering = self.ordering
        acks_before = dict(ordering.acks)
        for member, ack in msg.acks:
            ordering.add_ack(member, ack)
        # Stamp my own pending messages while holding the token.
        batch = ordering.take_own_stamp_batch(msg.next_seq)
        if batch:
            stamp = StampMsg(ordering.view_id, tuple(batch))
            size = (self.settings.header_size
                    + self.settings.stamp_entry_size * len(batch))
            others = [m for m in ordering.members if m != self.node]
            if others:
                self._net_multicast(others, stamp, size)
        self._try_deliver()
        ordering.prune_stable()
        # Forward the token with my receipt state folded in.
        acks = dict(msg.acks)
        acks[self.node] = ordering.ack_seq
        token = TokenMsg(msg.view_id, msg.next_seq + len(batch),
                         tuple(sorted(acks.items())))
        active = bool(batch) or ordering.acks != acks_before
        delay = (self.settings.token_hold if active
                 else max(self.settings.token_hold,
                          self.settings.ack_window))
        self.sim.post(delay, self._forward_token, token)

    def _forward_token(self, token: TokenMsg) -> None:
        if (self.state != DaemonState.OPERATIONAL
                or self.ordering is None
                or self.ordering.view_id != token.view_id):
            return
        ring = sorted(self.ordering.members)
        successor = ring[(ring.index(self.node) + 1) % len(ring)]
        if successor == self.node:
            self.sim.post(self.settings.ack_window, self._on_token,
                          token)
            return
        size = (self.settings.control_size
                + 16 * len(self.ordering.members))
        self._net_send(successor, token, size)

    def _token_watch_check(self) -> None:
        """The token died (loss, or its holder crashed): re-form the
        membership, which spawns a fresh token."""
        if (self.settings.ordering_mode != "token"
                or self.state != DaemonState.OPERATIONAL
                or not self.joined):
            return
        if self.sim.now - self._last_token_seen \
                > self.settings.token_timeout:
            self._enter_gather(self.attempt + 1)

    # ==================================================================
    # heartbeats and failure detection
    # ==================================================================
    def _other_directory(self) -> List[int]:
        return sorted(n for n in self.directory if n != self.node)

    def _control_multicast(self, dsts: List[int], payload: Any,
                           size: Optional[int] = None) -> None:
        if dsts:
            self.network.multicast(self.node, dsts, payload,
                                   size or self.settings.control_size)

    def _send_heartbeat(self) -> None:
        if self.state == DaemonState.DOWN:
            return
        ack = self.ordering.ack_seq if self.ordering is not None else -1
        view_id = self.ordering.view_id if self.ordering is not None else None
        self._control_multicast(
            self._other_directory(),
            HeartbeatMsg(self.node, view_id, self.joined, ack,
                         self.group),
            self.settings.ack_size)

    def _on_heartbeat(self, msg: HeartbeatMsg) -> None:
        if msg.group != self.group:
            # Foreign replication group sharing the transport: not our
            # liveness, and above all not a merge candidate.
            return
        if msg.joined:
            self._known_joined.add(msg.node)
        else:
            self._known_joined.discard(msg.node)
        if (self.ordering is not None and msg.view_id is not None
                and msg.view_id == self.ordering.view_id):
            self.ordering.add_ack(msg.node, msg.ack_seq)
            self._try_deliver()
        # Merge detection: a joined foreigner is reachable.
        if (self.joined and self.state == DaemonState.OPERATIONAL
                and msg.joined and self.view is not None
                and msg.node not in self.view.members):
            self._enter_gather(self.attempt + 1)

    def _failure_check(self) -> None:
        if (self.state != DaemonState.OPERATIONAL or not self.joined
                or self.view is None):
            return
        deadline = self.sim.now - self.settings.failure_timeout
        for member in self.view.members:
            if member == self.node:
                continue
            if self._last_heard.get(member, -1.0) < deadline:
                self._enter_gather(self.attempt + 1)
                return

    def topology_hint(self) -> None:
        """Fast-path notification that connectivity may have changed.

        Installed by the cluster when ``settings.use_topology_hints`` is
        on; the heartbeat/timeout path remains the correctness backstop.
        """
        if not self.joined or self.state == DaemonState.DOWN:
            return
        self._enter_gather(self.attempt + 1)

    def _on_leave(self, msg: LeaveMsg) -> None:
        self._known_joined.discard(msg.node)
        if (self.joined and self.view is not None
                and msg.node in self.view.members):
            self._enter_gather(self.attempt + 1)

    # ==================================================================
    # membership: gather
    # ==================================================================
    def _reset_round(self) -> None:
        self._perceived = set()
        self._round_coordinator = None
        self._proposal_members = ()
        self._reports = {}
        self._my_plan = None
        self._flush_done = set()
        self._sent_done = False
        self._gather_announce.stop()
        self._settle_timer.stop()
        self._phase_timer.stop()

    def _enter_gather(self, attempt: int) -> None:
        if not self.joined:
            return
        if self.batcher is not None:
            # Leaving OPERATIONAL: transmit everything buffered so no
            # old-view payload straddles the membership change.
            self.batcher.flush_all()
        self._reset_round()
        self.attempt = max(self.attempt, attempt)
        self.state = DaemonState.GATHER
        if self._c_gathers is not None:
            self._c_gathers.inc()
        self._perceived = {self.node}
        self.tracer.emit(self.sim.now, self.node, "gcs.gather",
                         attempt=self.attempt)
        self._announce_gather()
        self._gather_announce.start()
        self._settle_timer.start()

    def _announce_gather(self) -> None:
        if self.state != DaemonState.GATHER:
            return
        self._control_multicast(self._other_directory(),
                                GatherMsg(self.node, self.attempt, True))

    def _on_gather(self, msg: GatherMsg) -> None:
        if not msg.joined or not self.joined:
            return
        self._known_joined.add(msg.node)
        if self.state == DaemonState.GATHER:
            if msg.attempt > self.attempt:
                self._enter_gather(msg.attempt)
                self._perceived.add(msg.node)
            elif msg.attempt == self.attempt:
                if msg.node not in self._perceived:
                    self._perceived.add(msg.node)
                    self._settle_timer.start()
                    self._announce_gather()
        elif self.state == DaemonState.OPERATIONAL:
            self._enter_gather(max(self.attempt + 1, msg.attempt))
            self._perceived.add(msg.node)
        elif self.state == DaemonState.FLUSH:
            # Same-attempt announcements are stragglers of the round we
            # already settled; only a genuinely newer round restarts us.
            if msg.attempt > self.attempt:
                self._enter_gather(msg.attempt)
                self._perceived.add(msg.node)

    def _gather_settled(self) -> None:
        if self.state != DaemonState.GATHER:
            return
        members = tuple(sorted(self._perceived))
        coordinator = members[0]
        self._gather_announce.stop()
        self._round_coordinator = coordinator
        if coordinator == self.node:
            self._proposal_members = members
            self._reports = {}
            self.state = DaemonState.FLUSH
            self.tracer.emit(self.sim.now, self.node, "gcs.propose",
                             attempt=self.attempt, members=members)
            others = [m for m in members if m != self.node]
            self._control_multicast(
                others, ProposeMsg(self.node, self.attempt, members))
            self._accept_propose(
                ProposeMsg(self.node, self.attempt, members))
        else:
            # Wait for the coordinator's proposal.
            self.state = DaemonState.FLUSH
        self._phase_timer.start()

    def _phase_timeout(self) -> None:
        if self.state in (DaemonState.GATHER, DaemonState.FLUSH):
            self._enter_gather(self.attempt + 1)

    # ==================================================================
    # membership: propose / report
    # ==================================================================
    def _on_propose(self, msg: ProposeMsg) -> None:
        if not self.joined:
            return
        if msg.attempt < self.attempt or self.node not in msg.members:
            return
        if self.state not in (DaemonState.GATHER, DaemonState.FLUSH):
            return
        self.attempt = msg.attempt
        self._accept_propose(msg)

    def _accept_propose(self, msg: ProposeMsg) -> None:
        self.state = DaemonState.FLUSH
        self._round_coordinator = msg.coordinator
        self._proposal_members = msg.members
        self._sent_done = False
        self._my_plan = None
        self._phase_timer.start()
        report = self._build_report()
        if msg.coordinator == self.node:
            self._on_report(report)
        else:
            self.network.send(self.node, msg.coordinator, report,
                              self.settings.control_size
                              + 24 * len(report.stamps))

    def _build_report(self) -> StateReportMsg:
        if self.ordering is not None:
            return self.ordering.state_report(self.node, self.attempt)
        return StateReportMsg(
            node=self.node, attempt=self.attempt, old_view_id=None,
            stamps=(), have_data=(), ack_seq=-1, stability_line=-1,
            delivered_seq=-1, old_members=())

    def _on_report(self, msg: StateReportMsg) -> None:
        if (self.state != DaemonState.FLUSH
                or self._round_coordinator != self.node
                or msg.attempt != self.attempt):
            return
        self._reports[msg.node] = msg
        if set(self._reports) == set(self._proposal_members):
            self._coordinate_flush()

    # ==================================================================
    # membership: flush (coordinator side)
    # ==================================================================
    def _coordinate_flush(self) -> None:
        groups: Dict[Optional[ViewId], List[StateReportMsg]] = {}
        for report in self._reports.values():
            groups.setdefault(report.old_view_id, []).append(report)
        self._flush_done = set()
        for old_view_id, reports in groups.items():
            if old_view_id is None:
                # Nothing to flush for fresh joiners.
                for report in reports:
                    self._flush_done.add(report.node)
                continue
            self._note_epoch(old_view_id)
            union: Dict[int, Tuple[int, int]] = {}
            holders: Dict[int, List[int]] = {}
            for report in reports:
                for seq, origin, fifo in report.stamps:
                    union[seq] = (origin, fifo)
                for seq in report.have_data:
                    holders.setdefault(seq, []).append(report.node)
            stable_line = max(r.stability_line for r in reports)
            union_stamps = tuple((s, k[0], k[1])
                                 for s, k in sorted(union.items()))
            data_available = tuple(sorted(holders))
            plan = FlushPlanMsg(self.node, self.attempt, old_view_id,
                                union_stamps, data_available, stable_line)
            members = [r.node for r in reports]
            size = (self.settings.control_size
                    + self.settings.stamp_entry_size * len(union_stamps))
            others = [m for m in members if m != self.node]
            self._control_multicast(others, plan, size)
            if self.node in members:
                self._on_plan(plan)
            # retransmission commands
            commands: Dict[Tuple[int, int], List[int]] = {}
            for report in reports:
                have = set(report.have_data)
                for seq in holders:
                    if seq in have:
                        continue
                    holder = min(h for h in holders[seq])
                    commands.setdefault((holder, report.node),
                                        []).append(seq)
            for (holder, to_node), seqs in sorted(commands.items()):
                cmd = FlushRetransCmd(self.node, self.attempt, holder,
                                      to_node, old_view_id,
                                      tuple(sorted(seqs)))
                if holder == self.node:
                    self._on_retrans_cmd(cmd)
                else:
                    self.network.send(self.node, holder, cmd,
                                      self.settings.control_size)
        self._phase_timer.start()
        self._maybe_install()

    def _on_plan(self, msg: FlushPlanMsg) -> None:
        if (self.state != DaemonState.FLUSH
                or msg.attempt != self.attempt):
            return
        if self.ordering is None or self.ordering.view_id != msg.old_view_id:
            return
        self._my_plan = msg
        self.ordering.add_stamps(msg.union_stamps)
        self._phase_timer.start()
        self._check_flush_complete()

    def _on_retrans_cmd(self, msg: FlushRetransCmd) -> None:
        if self.ordering is None or self.ordering.view_id != msg.old_view_id:
            return
        items = self.ordering.retrans_items(list(msg.seqs))
        if not items:
            return
        size = sum(item[5] for item in items)
        retrans = RetransDataMsg(msg.old_view_id, tuple(items))
        self.tracer.emit(self.sim.now, self.node, "gcs.retrans",
                         to=msg.to_node, count=len(items))
        if msg.to_node == self.node:
            self._on_retrans(retrans)
        else:
            self.network.send(self.node, msg.to_node, retrans, size)

    def _check_flush_complete(self) -> None:
        if (self.state != DaemonState.FLUSH or self._my_plan is None
                or self._sent_done or self.ordering is None):
            return
        # Sequence numbers below our prune point were delivered and are
        # stable everywhere — they count as held even though the
        # payloads were discarded (peers may have pruned less than us).
        needed = {s for s in self._my_plan.data_available
                  if s >= self.ordering.pruned_below}
        have = {s for s, k in self.ordering.key_at.items()
                if k in self.ordering.data}
        if not needed.issubset(have):
            return
        self._sent_done = True
        done = FlushDoneMsg(self.node, self.attempt)
        if self._round_coordinator == self.node:
            self._on_flush_done(done)
        else:
            assert self._round_coordinator is not None
            self.network.send(self.node, self._round_coordinator, done,
                              self.settings.control_size)

    def _on_flush_done(self, msg: FlushDoneMsg) -> None:
        if (self.state != DaemonState.FLUSH
                or self._round_coordinator != self.node
                or msg.attempt != self.attempt):
            return
        self._flush_done.add(msg.node)
        self._maybe_install()

    def _maybe_install(self) -> None:
        if (self._round_coordinator != self.node
                or set(self._reports) != set(self._proposal_members)
                or self._flush_done != set(self._proposal_members)):
            return
        new_view_id = ViewId(self.max_epoch_seen + 1, self.node)
        trans_sets: List[Tuple[int, Tuple[int, ...]]] = []
        for member in self._proposal_members:
            old = self._reports[member].old_view_id
            if old is None:
                trans_sets.append((member, (member,)))
            else:
                same = tuple(sorted(
                    n for n in self._proposal_members
                    if self._reports[n].old_view_id == old))
                trans_sets.append((member, same))
        install = InstallMsg(self.node, self.attempt, new_view_id,
                             self._proposal_members, tuple(trans_sets))
        others = [m for m in self._proposal_members if m != self.node]
        self._control_multicast(others, install)
        self._on_install(install)

    # ==================================================================
    # membership: install (every member)
    # ==================================================================
    def _on_install(self, msg: InstallMsg) -> None:
        if (self.state != DaemonState.FLUSH
                or msg.attempt != self.attempt
                or self.node not in msg.members):
            return
        if self.batcher is not None:
            # Anything still buffered belongs to the old view; put it
            # on the wire before the new configuration exists.
            self.batcher.flush_all()
        self._note_epoch(msg.new_view_id)
        trans_sets = dict(msg.trans_sets)
        my_trans = frozenset(trans_sets.get(self.node, (self.node,)))

        resubmit: List[DataMsg] = []
        if self.ordering is not None and self.view is not None:
            old = self.ordering
            stable_line = (self._my_plan.stable_line
                           if self._my_plan is not None else -1)
            # 1. Stable prefix: delivered in the (old) regular conf.
            for seq in range(old.delivered_seq + 1, stable_line + 1):
                key = old.key_at.get(seq)
                if key is None or key not in old.data:
                    continue
                data = old.data[key]
                old.delivered_seq = seq
                self.deliveries += 1
                self.listener.on_message(data.payload, data.origin,
                                         in_transitional=False,
                                         service=data.service)
            # 2. Transitional configuration notification.
            self.listener.on_transitional_conf(
                Configuration(old.view_id, my_trans, transitional=True))
            # 3. Remaining stamped messages: delivered in the
            #    transitional configuration (holes are skipped — nobody
            #    reachable holds them; EVS permits this, the relative
            #    order of commonly-delivered messages is preserved).
            for seq in old.undelivered_stamped():
                key = old.key_at[seq]
                data = old.data[key]
                old.delivered_seq = max(old.delivered_seq, seq)
                self.deliveries += 1
                self.listener.on_message(data.payload, data.origin,
                                         in_transitional=True,
                                         service=data.service)
            # 4. Own messages that never made the total order are
            #    re-submitted in the new configuration.
            resubmit = old.unstamped_own()
        else:
            # A fresh member gets a singleton transitional conf if it
            # had no previous view (nothing can be delivered in it).
            self.listener.on_transitional_conf(
                Configuration(msg.new_view_id, frozenset([self.node]),
                              transitional=True))

        members = frozenset(msg.members)
        self.view = Configuration(msg.new_view_id, members)
        self.ordering = ViewOrdering(msg.new_view_id, members, self.node,
                                     mode=self.settings.ordering_mode)
        self.state = DaemonState.OPERATIONAL
        self.views_installed += 1
        self._reset_round()
        for member in members:
            self._last_heard[member] = self.sim.now
        if self.settings.ordering_mode == "token":
            self._last_token_seen = self.sim.now
            if self.node == min(members):
                self._spawn_token()
        self.tracer.emit(self.sim.now, self.node, "gcs.install",
                         view=str(msg.new_view_id),
                         members=tuple(sorted(members)))
        self.listener.on_regular_conf(self.view)
        outbox, self._outbox = self._outbox, []
        for data in resubmit:
            self.multicast(data.payload, data.service,
                           data.size - self.settings.header_size,
                           data.trace)
        for payload, service, size, trace in outbox:
            self.multicast(payload, service, size, trace)

    # ==================================================================
    # misc
    # ==================================================================
    def _note_epoch(self, view_id: ViewId) -> None:
        if view_id.epoch > self.max_epoch_seen:
            self.max_epoch_seen = view_id.epoch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GcsDaemon {self.node} {self.state} "
                f"view={self.view.view_id if self.view else None}>")
