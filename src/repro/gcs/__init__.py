"""Group communication substrate with Extended Virtual Synchrony.

A Spread-like toolkit over the simulated network: totally ordered
multicast with FIFO/AGREED/SAFE service levels, membership with
transitional + regular configuration notifications, NACK loss recovery,
and reliable point-to-point channels for out-of-group transfer.
"""

from .channel import ChanAck, ChanData, ReliableChannelEndpoint
from .daemon import DaemonState, GcsDaemon, GcsListener
from .group import GroupChannel
from .ordering import ViewOrdering
from .types import Configuration, GcsSettings, ServiceLevel, ViewId

__all__ = [
    "ChanAck",
    "ChanData",
    "Configuration",
    "DaemonState",
    "GcsDaemon",
    "GcsListener",
    "GcsSettings",
    "GroupChannel",
    "ReliableChannelEndpoint",
    "ServiceLevel",
    "ViewId",
    "ViewOrdering",
]
