"""Deterministic fault-schedule fuzzing of the real simulator stack.

Where the model checker (:mod:`repro.check.mc`) explores an abstract
model exhaustively, the fuzzer drives the *real* system — GCS daemons,
replication engines, disks, the works — through seeded random fault
schedules drawn from :func:`repro.net.faults.random_fault_schedule`,
then checks the global end-to-end invariants: green-prefix
consistency, convergence after the final heal, a re-formed primary
component, and durability of every completed action.

Everything is plain data.  A fuzz case is rendered into a
``tools/scenario.py`` spec (JSON-compatible) and executed via
:func:`repro.tools.scenario.run_scenario`; the same rendering is what
the shrinker (:mod:`repro.check.shrink`) emits as a pinned regression
spec, so a shrunk repro replays bit-for-bit with no fuzzer involved.

Determinism: the only randomness is ``random.Random(seed)``; the
simulator underneath is the deterministic virtual-time kernel.  Same
seed ⇒ same schedule ⇒ same execution ⇒ same verdict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..net.faults import random_fault_schedule

#: One schedule entry: (time, op, arg) with a JSON-able arg.
ScheduleStep = Tuple[float, str, Any]

#: GCS timers for fuzz runs — the fast test profile, pinned inline so
#: emitted repro specs are self-contained.
FAST_GCS: Dict[str, float] = {
    "heartbeat_interval": 0.02,
    "failure_timeout": 0.08,
    "gather_settle": 0.02,
    "phase_timeout": 0.15,
    "nack_timeout": 0.01,
}

#: Disk profile for fuzz runs (protocol logic, not latency, dominates).
FAST_DISK: Dict[str, float] = {
    "forced_write_latency": 0.001,
    "async_write_latency": 0.00001,
}


@dataclass(frozen=True)
class FuzzCase:
    """Shape of one seeded fuzz run."""

    seed: int
    nodes: int = 4
    horizon: float = 4.0
    rate: float = 2.0           # mean faults per virtual second
    submits: int = 3
    allow_crashes: bool = True
    settle: float = 3.0         # quiet tail after the final heal
    quorum: str = "dynamic-linear"


@dataclass
class FuzzResult:
    """Verdict of one case: ``failure`` is None on a clean run."""

    case: FuzzCase
    schedule: List[ScheduleStep]
    failure: Optional[str] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.case.seed,
            "nodes": self.case.nodes,
            "quorum": self.case.quorum,
            "schedule": [list(s) for s in self.schedule],
            "failure": self.failure,
            "detail": self.detail,
        }


def generate_schedule(case: FuzzCase) -> List[ScheduleStep]:
    """Draw the case's fault + submit schedule (deterministic).

    The body is free-form; the tail — recover every crashed node, heal,
    settle — is appended by :func:`render_spec` so the end-state
    invariants are meaningful (and the shrinker never removes it).
    """
    rng = random.Random(case.seed)
    nodes = list(range(1, case.nodes + 1))
    script = random_fault_schedule(
        nodes, rng, horizon=case.horizon, rate=case.rate,
        allow_crashes=case.allow_crashes)
    steps: List[ScheduleStep] = []
    crashed_at: List[Tuple[float, int, str]] = []
    for event in script.events:
        if event.time >= case.horizon:
            continue  # the tail recovery/heal is re-added at render
        if event.op == "partition":
            steps.append((event.time, "partition",
                          [list(g) for g in event.arg]))
        elif event.op in ("crash", "recover"):
            steps.append((event.time, event.op, int(event.arg)))
            crashed_at.append((event.time, int(event.arg), event.op))
        else:
            steps.append((event.time, event.op, None))

    def alive_at(t: float, node: int) -> bool:
        state = True
        for when, n, op in crashed_at:
            if n == node and when <= t:
                state = op != "crash"
        return state

    for i in range(case.submits):
        t = round(rng.uniform(0.0, case.horizon), 3)
        node = rng.choice(nodes)
        if not alive_at(t, node):
            continue  # submission target is down: skip, keep the draw
        steps.append((t, "submit", [node, ["SET", f"k{i}", i]]))
    steps.sort(key=lambda s: (s[0], s[1], str(s[2])))
    return steps


def render_spec(case: FuzzCase,
                schedule: List[ScheduleStep]) -> Dict[str, Any]:
    """Render a schedule into a ``tools/scenario.py`` spec.

    Pure data in, pure data out — this is also the shrinker's emitted
    regression format, so it embeds the timers and quorum policy.
    """
    ops: List[Dict[str, Any]] = []
    now = 0.0
    submitted: List[Tuple[float, int]] = []  # (time, node)
    crash_times: List[Tuple[float, int]] = []
    crashed: set = set()
    for when, op, arg in sorted(schedule,
                                key=lambda s: (s[0], s[1], str(s[2]))):
        if when > now:
            ops.append({"op": "run", "seconds": round(when - now, 6)})
            now = when
        if op == "partition":
            ops.append({"op": "partition", "groups": arg, "settle": 0.0})
        elif op == "heal":
            ops.append({"op": "heal", "settle": 0.0})
        elif op == "crash":
            if arg in crashed or len(crashed) + 1 >= case.nodes:
                continue  # shrinking removed the matching recover
            crashed.add(arg)
            crash_times.append((when, arg))
            ops.append({"op": "crash", "node": arg, "settle": 0.0})
        elif op == "recover":
            if arg not in crashed:
                continue
            crashed.discard(arg)
            ops.append({"op": "recover", "node": arg, "settle": 0.0})
        elif op == "submit":
            node, update = arg
            if node in crashed:
                continue
            submitted.append((when, node))
            ops.append({"op": "submit", "node": node, "update": update})
        else:
            raise ValueError(f"unknown schedule op {op!r}")
    # Fixed tail: recover everything, heal, settle, then the invariant
    # checks.  The shrinker operates on the schedule, never the tail.
    for node in sorted(crashed):
        ops.append({"op": "recover", "node": node, "settle": 0.0})
    ops.append({"op": "heal", "settle": 0.0})
    ops.append({"op": "run", "seconds": case.settle})
    ops.append({"op": "check", "kind": "prefix"})
    ops.append({"op": "check", "kind": "single_primary"})
    ops.append({"op": "check", "kind": "converged"})
    ops.append({"op": "check", "kind": "all_primary"})
    # A submission's completion callback lives in the submitting
    # replica's memory: if that node crashes later, the action itself
    # survives (forced write) but the callback is gone, so such
    # submissions don't count toward the expected completions.
    expected = sum(
        1 for t, node in submitted
        if not any(node == victim and when >= t
                   for when, victim in crash_times))
    if expected:
        ops.append({"op": "check", "kind": "completions",
                    "at_least": expected})
    return {
        "replicas": case.nodes,
        "seed": case.seed,
        "settle": 1.0,
        "gcs": dict(FAST_GCS),
        "disk": dict(FAST_DISK),
        "quorum": case.quorum,
        "steps": ops,
    }


def classify_failure(error: BaseException) -> Tuple[str, str]:
    """Stable failure name for shrink matching + a human detail."""
    from ..tools.scenario import ScenarioError
    if isinstance(error, ScenarioError):
        text = str(error)
        if text.startswith("check "):
            kind = text.split("'")[1] if "'" in text else "unknown"
            return f"check:{kind}", text
        return "scenario-error", text
    return f"exception:{type(error).__name__}", str(error)


def run_schedule(case: FuzzCase,
                 schedule: List[ScheduleStep]) -> FuzzResult:
    """Render + execute one schedule on the real simulator."""
    from ..tools.scenario import run_scenario
    spec = render_spec(case, schedule)
    try:
        run_scenario(spec)
    except Exception as error:  # noqa: BLE001 - every failure is a find
        name, detail = classify_failure(error)
        return FuzzResult(case=case, schedule=schedule,
                          failure=name, detail=detail)
    return FuzzResult(case=case, schedule=schedule)


def run_case(case: FuzzCase) -> FuzzResult:
    return run_schedule(case, generate_schedule(case))


@dataclass
class CampaignResult:
    """Verdicts for a batch of seeds."""

    results: List[FuzzResult] = field(default_factory=list)

    @property
    def failures(self) -> List[FuzzResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seeds": len(self.results),
            "failed": len(self.failures),
            "results": [r.to_dict() for r in self.results],
        }


def run_campaign(seeds: int = 10, base: Optional[FuzzCase] = None,
                 first_seed: int = 0) -> CampaignResult:
    """Run ``seeds`` consecutive seeded cases."""
    template = base or FuzzCase(seed=0)
    campaign = CampaignResult()
    for seed in range(first_seed, first_seed + seeds):
        case = FuzzCase(
            seed=seed, nodes=template.nodes, horizon=template.horizon,
            rate=template.rate, submits=template.submits,
            allow_crashes=template.allow_crashes,
            settle=template.settle, quorum=template.quorum)
        campaign.results.append(run_case(case))
    return campaign
