"""Abstract N-engine model of the Figure-4 machine for model checking.

The model is a *small-step abstraction* of the real replication engine
(`core/engine.py`): each server is reduced to the records the paper's
correctness argument actually mentions — the Figure-4 state, the green
prefix, the yellow record, the last installed primary component, the
attempt counter, and the vulnerable record — plus a per-node inbox of
undelivered SAFE multicasts.  Global state adds the network topology
(a partition of the live nodes), crash status, and the frozen report
snapshot of each view's state exchange.

Fidelity comes from *derivation, not duplication*:

* every state transition goes through :meth:`Model._step`, which
  validates the move against ``EDGES_BY_INPUT`` via
  :func:`repro.core.state_machine.next_states` — the model cannot take
  an edge Figure 4 does not declare;
* the exchange computation is the real one — the model builds
  :class:`~repro.core.messages.EngineStateMsg` reports and calls
  :func:`repro.core.knowledge.compute_knowledge` /
  :func:`~repro.core.knowledge.plan_retransmission` directly;
* quorum decisions delegate to the real
  :class:`~repro.core.quorum.QuorumPolicy` implementations.

Abstractions (deliberate, documented):

* Message delivery is *big-step*: one ``deliver`` event drains a
  node's whole inbox in FIFO order.  Interleavings of deliveries with
  faults across nodes are preserved (they are separate events); partial
  drains of a single inbox are not.
* Green retransmission is big-step too: one ``retrans`` event brings a
  lagging member to the plan's green target (after checking the prefix
  property that the real incremental retransmission enforces).
* Extended virtual synchrony is modelled structurally: faults apply
  the transitional configuration immediately, and ``form_view`` first
  drains every member's inbox (the transitional delivery flush) before
  delivering the regular configuration.  Delivery *before* the fault is
  the separate branch where ``deliver`` fires first.

The two known liveness wedges are re-introducible via
:class:`ModelConfig` flags (``tie_breaker`` and ``buffer_early_cpc``)
so the checker can prove it would have caught them (the mutation
self-test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterator, List, NamedTuple, Optional,
                    Set, Tuple)

from ..core.knowledge import Knowledge, compute_knowledge
from ..core.messages import EngineStateMsg
from ..core.quorum import DynamicLinearVoting, QuorumPolicy, StaticMajority
from ..core.records import PrimComponent, Vulnerable
from ..core.state_machine import EngineInput, EngineState, next_states

_S = EngineState
_I = EngineInput

#: A model action token: (creator node, sequence number).
ActionTok = Tuple[int, int]

#: A recorded Figure-4 edge: (input kind, old state, new state).
EdgeUse = Tuple[EngineInput, EngineState, EngineState]

# Inbox message shapes (plain tuples so states stay hashable):
#   ("cpc", sender, epoch)          a create-primary-component vote
#   ("act", (creator, seq), epoch)  an action multicast
Msg = Tuple


class ModelInternalError(Exception):
    """The model violated one of its own structural assumptions —
    either a Figure-4 edge the table does not declare, or the EVS
    shadow claim (reg conf reaching Construct/ExchangeActions)."""


#: (state, input) -> legal successor set, memoized from
#: :func:`next_states` (still *derived* from ``EDGES_BY_INPUT`` — this
#: is a cache, not a copy; the analyzer checks the provenance).
_NEXT: Dict[Tuple[EngineState, EngineInput], FrozenSet[EngineState]] = {
    (state, event): next_states(state, event)
    for state in EngineState for event in EngineInput
}


class ModelNode(NamedTuple):
    """One server's abstract state (hashable)."""

    state: EngineState
    green: Tuple[ActionTok, ...]
    red: Tuple[ActionTok, ...]
    yellow_valid: bool
    yellow: Tuple[ActionTok, ...]
    prim: Tuple[int, int, Tuple[int, ...]]  # (prim_index, attempt, servers)
    attempt: int
    # (prim_index, attempt_index, members, true-bit members) or None
    vuln: Optional[Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]]
    view: Optional[Tuple[int, Tuple[int, ...]]]  # (epoch, members)
    dirty: bool          # a trans conf arrived since the last reg conf
    inbox: Tuple[Msg, ...]
    votes: FrozenSet[int]
    cbuf: Tuple[ActionTok, ...]  # actions buffered while in Construct


#: member -> frozen exchange report: (green, prim, attempt, vuln,
#: yellow_valid, yellow); captured when the view forms.
Report = Tuple[Tuple[ActionTok, ...],
               Tuple[int, int, Tuple[int, ...]],
               int,
               Optional[Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]],
               bool,
               Tuple[ActionTok, ...]]


class GlobalState(NamedTuple):
    """The full abstract system state (hashable, canonical)."""

    nodes: Tuple[ModelNode, ...]           # indexed by node id order
    comps: Tuple[Tuple[int, ...], ...]     # partition of the live nodes
    down: FrozenSet[int]
    # ((epoch, ((member, report), ...)), ...) — exchange snapshots
    reports: Tuple[Tuple[int, Tuple[Tuple[int, Report], ...]], ...]
    epoch_next: int
    faults: int
    crashes: int
    actions: int


class Event(NamedTuple):
    """One enabled transition of the abstract system."""

    kind: str       # deliver | ds | retrans | form_view | client | fault
    arg: Tuple      # operand (node id, component, fault description...)

    def describe(self) -> str:
        if self.kind == "fault":
            return f"{self.arg[0]}({', '.join(map(str, self.arg[1:]))})"
        if self.kind == "form_view":
            return f"form_view({list(self.arg)})"
        return f"{self.kind}({', '.join(map(str, self.arg))})"


@dataclass(frozen=True)
class ModelConfig:
    """Shape and mutation switches of the abstract model."""

    nodes: int = 4
    max_faults: int = 2       # partition/merge/crash/recover budget
    max_crashes: int = 1
    max_actions: int = 1      # client submissions budget
    quorum: str = "dynamic-linear"   # or "static-majority"
    # Mutation switches — True is the shipped (fixed) behaviour:
    tie_breaker: bool = True        # PR 1: exact-half distinguished member
    buffer_early_cpc: bool = True   # PR 4: keep votes arriving in ES/EA

    def policy(self) -> QuorumPolicy:
        if self.quorum == "static-majority":
            return StaticMajority()
        return DynamicLinearVoting()


class Model:
    """Event semantics of the abstract system.

    Stateless between calls: every method takes and returns immutable
    :class:`GlobalState` values, so the checker can memoize freely.
    Exercised Figure-4 edges are accumulated in :attr:`edges_seen`.
    """

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self.server_ids: Tuple[int, ...] = tuple(
            range(1, config.nodes + 1))
        self._policy = config.policy()
        # The unmutated reference policy used by the liveness oracle.
        self._oracle_policy = ModelConfig(quorum=config.quorum).policy()
        self.edges_seen: Set[EdgeUse] = set()
        #: safety violations found while applying events, cleared and
        #: collected by the checker after each apply
        self.violations: List[str] = []

    # ==================================================================
    # construction
    # ==================================================================
    def initial_state(self) -> GlobalState:
        node = ModelNode(
            state=_S.NON_PRIM, green=(), red=(), yellow_valid=False,
            yellow=(), prim=(0, 0, self.server_ids), attempt=0,
            vuln=None, view=None, dirty=False, inbox=(),
            votes=frozenset(), cbuf=())
        return GlobalState(
            nodes=tuple(node for _ in self.server_ids),
            comps=(self.server_ids,),
            down=frozenset(), reports=(), epoch_next=0,
            faults=0, crashes=0, actions=0)

    # ==================================================================
    # transition helper: ALL state changes go through here
    # ==================================================================
    def _step(self, old: EngineState, new: EngineState,
              input_kind: EngineInput) -> EngineState:
        """Validate a transition against ``EDGES_BY_INPUT`` and record
        the exercised edge.  Raising here means the *model* tried a
        move Figure 4 does not declare — a model bug, not a protocol
        finding."""
        if old is new:
            return new
        if new not in _NEXT[old, input_kind]:
            raise ModelInternalError(
                f"model produced undeclared edge {old} -> {new} "
                f"on {input_kind}")
        self.edges_seen.add((input_kind, old, new))
        return new

    # ==================================================================
    # event enumeration
    # ==================================================================
    def enabled_events(self, state: GlobalState) -> List[Event]:
        events: List[Event] = []
        nodes = state.nodes
        for n in self.server_ids:
            if n in state.down:
                continue
            if nodes[n - 1].inbox:
                events.append(Event("deliver", (n,)))
        for n in self.server_ids:
            if n in state.down:
                continue
            node = nodes[n - 1]
            if node.state is _S.EXCHANGE_STATES and node.view is not None:
                events.append(Event("ds", (n,)))
            elif node.state is _S.EXCHANGE_ACTIONS \
                    and self._needs_retrans(state, n):
                events.append(Event("retrans", (n,)))
        for comp in state.comps:
            if self._view_pending(state, comp):
                events.append(Event("form_view", (comp,)))
        if state.actions < self.config.max_actions:
            for n in self.server_ids:
                if n not in state.down \
                        and nodes[n - 1].state is _S.REG_PRIM:
                    events.append(Event("client", (n,)))
        if state.faults < self.config.max_faults:
            events.extend(self._fault_events(state))
        return events

    def _view_pending(self, state: GlobalState,
                      comp: Tuple[int, ...]) -> bool:
        members = [n for n in comp if n not in state.down]
        if not members:
            return False
        epochs = set()
        for n in members:
            node = state.nodes[n - 1]
            if node.view is None or node.dirty:
                return True
            if set(node.view[1]) != set(comp):
                return True
            epochs.add(node.view[0])
        return len(epochs) > 1

    def _needs_retrans(self, state: GlobalState, n: int) -> bool:
        node = state.nodes[n - 1]
        assert node.view is not None
        snapshot = self._snapshot_for(state, node.view[0])
        if snapshot is None:
            return False
        # With no red tails in the model, retransmission_complete
        # reduces to reaching the longest green prefix of the round.
        target = max(len(report[0]) for _member, report in snapshot)
        return len(node.green) < target

    def _fault_events(self, state: GlobalState) -> Iterator[Event]:
        # Partitions: every bipartition of every component (the first
        # member stays in the first half, killing the mirror symmetry).
        for comp in state.comps:
            live = [n for n in comp if n not in state.down]
            if len(live) < 2:
                continue
            rest = live[1:]
            for mask in range(1 << len(rest)):
                side_a = [live[0]] + [m for i, m in enumerate(rest)
                                      if mask & (1 << i)]
                side_b = [m for i, m in enumerate(rest)
                          if not mask & (1 << i)]
                if not side_b:
                    continue
                yield Event("fault", ("partition", comp,
                                      tuple(side_a), tuple(side_b)))
        comps = state.comps
        for i in range(len(comps)):
            for j in range(i + 1, len(comps)):
                yield Event("fault", ("merge", comps[i], comps[j]))
        if state.crashes < self.config.max_crashes:
            alive = [n for n in self.server_ids if n not in state.down]
            if len(alive) > 1:
                for n in alive:
                    yield Event("fault", ("crash", n))
        for n in sorted(state.down):
            yield Event("fault", ("recover", n))

    # ==================================================================
    # event application
    # ==================================================================
    def apply_event(self, state: GlobalState,
                    event: Event) -> GlobalState:
        self.violations = []
        if event.kind == "deliver":
            new = self._apply_deliver(state, event.arg[0])
        elif event.kind == "ds":
            new = self._apply_ds(state, event.arg[0])
        elif event.kind == "retrans":
            new = self._apply_retrans(state, event.arg[0])
        elif event.kind == "form_view":
            new = self._apply_form_view(state, event.arg[0])
        elif event.kind == "client":
            new = self._apply_client(state, event.arg[0])
        elif event.kind == "fault":
            new = self._apply_fault(state, event.arg)
        else:  # pragma: no cover - exhaustive
            raise ModelInternalError(f"unknown event {event}")
        self.violations.extend(self.check_safety(new, event.kind))
        return canonicalize(new)

    # ------------------------------------------------------------------
    def _apply_client(self, state: GlobalState, n: int) -> GlobalState:
        node = state.nodes[n - 1]
        assert node.view is not None
        tok: ActionTok = (n, state.actions + 1)
        epoch, members = node.view
        msg: Msg = ("act", tok, epoch)
        nodes = list(state.nodes)
        for m in members:
            if m in state.down:
                continue
            nodes[m - 1] = nodes[m - 1]._replace(
                inbox=nodes[m - 1].inbox + (msg,))
        return state._replace(nodes=tuple(nodes),
                              actions=state.actions + 1)

    # ------------------------------------------------------------------
    def _apply_deliver(self, state: GlobalState, n: int) -> GlobalState:
        nodes = list(state.nodes)
        node = nodes[n - 1]
        inbox, node = node.inbox, node._replace(inbox=())
        for msg in inbox:
            node, sends = self._deliver_one(node, n, msg)
            nodes[n - 1] = node
            if sends:
                state = state._replace(nodes=tuple(nodes))
                state = self._broadcast(state, n, sends)
                nodes = list(state.nodes)
                node = nodes[n - 1]
        nodes[n - 1] = node
        return state._replace(nodes=tuple(nodes))

    def _broadcast(self, state: GlobalState, sender: int,
                   msgs: List[Msg]) -> GlobalState:
        """Multicast ``msgs`` to every member of the sender's view
        (including the sender — the engine receives its own SAFE
        multicasts through the loopback delivery)."""
        node = state.nodes[sender - 1]
        assert node.view is not None
        nodes = list(state.nodes)
        for m in node.view[1]:
            if m in state.down:
                continue
            nodes[m - 1] = nodes[m - 1]._replace(
                inbox=nodes[m - 1].inbox + tuple(msgs))
        return state._replace(nodes=tuple(nodes))

    def _deliver_one(self, node: ModelNode, n: int,
                     msg: Msg) -> Tuple[ModelNode, List[Msg]]:
        """Port of ``_on_gcs_message`` for one inbox message."""
        if node.view is None or msg[-1] != node.view[0]:
            return node, []  # stale epoch: flushed view, drop
        if msg[0] == "cpc":
            return self._deliver_cpc(node, n, msg[1])
        return self._deliver_action(node, n, msg[1]), []

    def _deliver_cpc(self, node: ModelNode, n: int,
                     sender: int) -> Tuple[ModelNode, List[Msg]]:
        """Port of ``_on_cpc``."""
        state = node.state
        if state in (_S.EXCHANGE_STATES, _S.EXCHANGE_ACTIONS):
            if self.config.buffer_early_cpc:
                node = node._replace(votes=node.votes | {sender})
            # else: the pre-PR-4 bug — the early vote is dropped
            return node, []
        if state is _S.CONSTRUCT:
            node = node._replace(votes=node.votes | {sender})
            assert node.view is not None
            if node.votes == frozenset(node.view[1]):
                node = self._install(node, _I.CPC_MSG)
                buffered, node = node.cbuf, node._replace(cbuf=())
                for tok in buffered:
                    node = node._replace(
                        green=_append(node.green, tok))
                node = node._replace(state=self._step(
                    node.state, _S.REG_PRIM, _I.CPC_MSG))
            return node, []
        if state is _S.NO:
            node = node._replace(votes=node.votes | {sender})
            assert node.view is not None
            if node.votes == frozenset(node.view[1]):
                node = node._replace(state=self._step(
                    node.state, _S.UN, _I.CPC_MSG))
            return node, []
        return node, []  # stale vote from a superseded attempt

    def _deliver_action(self, node: ModelNode, n: int,
                        tok: ActionTok) -> ModelNode:
        """Port of ``_on_action``."""
        state = node.state
        if state is _S.REG_PRIM:
            return node._replace(green=_append(node.green, tok))
        if state is _S.TRANS_PRIM:
            return node._replace(yellow=_append(node.yellow, tok),
                                 red=_append(node.red, tok))
        if state in (_S.NON_PRIM, _S.EXCHANGE_STATES):
            return node._replace(red=_append(node.red, tok))
        if state is _S.UN:
            # Transition 1b: an action proves somebody installed.
            node = self._install(node, _I.ACTION)
            node = node._replace(yellow=_append(node.yellow, tok),
                                 red=_append(node.red, tok))
            return node._replace(state=self._step(
                node.state, _S.TRANS_PRIM, _I.ACTION))
        if state is _S.CONSTRUCT:
            return node._replace(cbuf=node.cbuf + (tok,))
        return node  # unexpected_action: dropped

    # ------------------------------------------------------------------
    def _install(self, node: ModelNode,
                 input_kind: EngineInput) -> ModelNode:
        """Port of ``_install`` (A.10)."""
        green = node.green
        if node.yellow_valid:
            for tok in node.yellow:
                green = _append(green, tok)
        assert node.vuln is not None
        prim = (node.prim[0] + 1, node.attempt, node.vuln[2])
        for tok in sorted(node.red):
            green = _append(green, tok)
        return node._replace(green=green, red=(), yellow=(),
                             yellow_valid=False, prim=prim, attempt=0)

    # ------------------------------------------------------------------
    def _apply_ds(self, state: GlobalState, n: int) -> GlobalState:
        """Deliver the full round of state messages to ``n`` — port of
        ``_all_states_delivered`` (+ local completion check)."""
        node = state.nodes[n - 1]
        assert node.view is not None
        snapshot = self._snapshot_for(state, node.view[0])
        assert snapshot is not None
        knowledge = self._knowledge(snapshot)
        node = node._replace(
            yellow_valid=knowledge.yellow.is_valid,
            yellow=tuple(knowledge.yellow.set),
            state=self._step(node.state, _S.EXCHANGE_ACTIONS,
                             _I.STATE_MSG))
        nodes = list(state.nodes)
        nodes[n - 1] = node
        state = state._replace(nodes=tuple(nodes))
        target = max(len(report[0]) for _member, report in snapshot)
        if len(node.green) >= target:
            state = self._end_of_retrans(state, n, knowledge,
                                         _I.STATE_MSG)
        return state

    def _apply_retrans(self, state: GlobalState, n: int) -> GlobalState:
        """Bring ``n``'s green prefix to the plan target (big-step) —
        the real system retransmits one action at a time, with the
        green-gap assertion enforcing exactly this prefix property."""
        node = state.nodes[n - 1]
        assert node.view is not None
        snapshot = self._snapshot_for(state, node.view[0])
        assert snapshot is not None
        target_green: Tuple[ActionTok, ...] = ()
        for _member, report in snapshot:
            if len(report[0]) > len(target_green):
                target_green = report[0]
        if node.green != target_green[:len(node.green)]:
            self.violations.append(
                f"green-prefix: node {n} green {node.green} diverges "
                f"from retransmitted prefix {target_green}")
        merged = target_green
        node = node._replace(
            green=merged,
            red=tuple(t for t in node.red if t not in merged))
        nodes = list(state.nodes)
        nodes[n - 1] = node
        state = state._replace(nodes=tuple(nodes))
        knowledge = self._knowledge(snapshot)
        return self._end_of_retrans(state, n, knowledge, _I.ACTION)

    def _end_of_retrans(self, state: GlobalState, n: int,
                        knowledge: Knowledge,
                        input_kind: EngineInput) -> GlobalState:
        """Port of ``_end_of_retrans`` (A.5) + IsQuorum (A.8)."""
        node = state.nodes[n - 1]
        assert node.view is not None
        kp = knowledge.prim_component
        node = node._replace(
            prim=(kp.prim_index, kp.attempt_index, tuple(kp.servers)),
            attempt=knowledge.attempt_index)
        if node.vuln is not None:
            resolved = knowledge.vulnerable_resolution.get(n)
            if resolved is not None:
                valid, bits = resolved
                if not valid:
                    node = node._replace(vuln=None)
                else:
                    node = node._replace(vuln=(
                        node.vuln[0], node.vuln[1], node.vuln[2],
                        tuple(sorted(m for m, b in bits.items() if b))))
        epoch, members = node.view
        sends: List[Msg] = []
        if not knowledge.any_vulnerable() and self._is_quorum(
                members, node.prim[2]):
            attempt = node.attempt + 1
            node = node._replace(
                attempt=attempt,
                vuln=(node.prim[0], attempt, tuple(sorted(members)),
                      (n,)),
                state=self._step(node.state, _S.CONSTRUCT, input_kind))
            sends.append(("cpc", n, epoch))
        else:
            node = node._replace(state=self._step(
                node.state, _S.NON_PRIM, input_kind))
        nodes = list(state.nodes)
        nodes[n - 1] = node
        state = state._replace(nodes=tuple(nodes))
        if sends:
            state = self._broadcast(state, n, sends)
        return state

    def _is_quorum(self, members: Tuple[int, ...],
                   last_prim: Tuple[int, ...]) -> bool:
        """Delegates to the real policy; the ``tie_breaker`` mutation
        re-introduces the pre-PR-1 behaviour where an exact half never
        suffices (no distinguished member)."""
        ok = self._policy.is_quorum(members, last_prim, self.server_ids)
        if ok and not self.config.tie_breaker:
            prim = set(last_prim) or set(self.server_ids)
            present = sum(1 for s in prim if s in set(members))
            if present * 2 == len(prim):
                return False
        return ok

    # ------------------------------------------------------------------
    def _apply_form_view(self, state: GlobalState,
                         comp: Tuple[int, ...]) -> GlobalState:
        """Deliver the pending view to a component: transitional flush
        of every member's inbox, then the regular configuration, then
        freeze the exchange report snapshot."""
        members = tuple(n for n in comp if n not in state.down)
        epoch = state.epoch_next
        for n in members:
            if state.nodes[n - 1].inbox:
                state = self._apply_deliver(state, n)
        nodes = list(state.nodes)
        for n in members:
            node = nodes[n - 1]
            if node.state not in (_S.NON_PRIM, _S.TRANS_PRIM,
                                  _S.NO, _S.UN):
                # The EVS shadow claim (EVS_SHADOWED_EDGES): a regular
                # conf can never find the engine elsewhere.
                raise ModelInternalError(
                    f"reg conf reached node {n} in {node.state}")
            if node.state is _S.TRANS_PRIM:
                node = node._replace(vuln=None, yellow_valid=True)
            elif node.state is _S.NO:
                node = node._replace(vuln=None)
            # Un: stays vulnerable (the '?' transition); NonPrim: no-op
            node = node._replace(
                view=(epoch, members), dirty=False,
                votes=frozenset(), cbuf=(), inbox=(),
                state=self._step(node.state, _S.EXCHANGE_STATES,
                                 _I.REG_CONF))
            nodes[n - 1] = node
        snapshot = tuple(
            (n, (nodes[n - 1].green, nodes[n - 1].prim,
                 nodes[n - 1].attempt, nodes[n - 1].vuln,
                 nodes[n - 1].yellow_valid, nodes[n - 1].yellow))
            for n in members)
        live_epochs = {epoch}
        reports = [(epoch, snapshot)]
        state = state._replace(nodes=tuple(nodes))
        for n in self.server_ids:
            node = state.nodes[n - 1]
            if n not in state.down and node.view is not None:
                live_epochs.add(node.view[0])
        for old_epoch, old_snapshot in state.reports:
            if old_epoch in live_epochs and old_epoch != epoch:
                reports.append((old_epoch, old_snapshot))
        return state._replace(reports=tuple(sorted(reports)),
                              epoch_next=epoch + 1)

    # ------------------------------------------------------------------
    def _apply_fault(self, state: GlobalState,
                     fault: Tuple) -> GlobalState:
        op = fault[0]
        if op == "partition":
            _, comp, side_a, side_b = fault
            comps = tuple(c for c in state.comps if c != comp) \
                + (tuple(sorted(side_a)), tuple(sorted(side_b)))
            state = state._replace(comps=tuple(sorted(comps)),
                                   faults=state.faults + 1)
        elif op == "merge":
            _, comp_a, comp_b = fault
            merged = tuple(sorted(set(comp_a) | set(comp_b)))
            comps = tuple(c for c in state.comps
                          if c not in (comp_a, comp_b)) + (merged,)
            state = state._replace(comps=tuple(sorted(comps)),
                                   faults=state.faults + 1)
        elif op == "crash":
            n = fault[1]
            nodes = list(state.nodes)
            node = nodes[n - 1]
            # Volatile state is lost; the persistent records (green
            # prefix, prim component, vulnerable, yellow, attempt,
            # red actions) survive — _persist_records/_recover.
            nodes[n - 1] = node._replace(
                state=_S.NON_PRIM, view=None, dirty=False, inbox=(),
                votes=frozenset(), cbuf=())
            comps = tuple(
                tuple(m for m in c if m != n)
                for c in state.comps)
            state = state._replace(
                nodes=tuple(nodes),
                comps=tuple(sorted(c for c in comps if c)),
                down=state.down | {n},
                faults=state.faults + 1, crashes=state.crashes + 1)
        elif op == "recover":
            n = fault[1]
            state = state._replace(
                comps=tuple(sorted(state.comps + ((n,),))),
                down=state.down - {n},
                faults=state.faults + 1)
        else:  # pragma: no cover - exhaustive
            raise ModelInternalError(f"unknown fault {fault}")
        return self._apply_trans_confs(state)

    def _apply_trans_confs(self, state: GlobalState) -> GlobalState:
        """After a topology change, deliver a transitional
        configuration to every live node whose component no longer
        matches its view — port of ``_on_trans_conf``."""
        comp_of: Dict[int, Tuple[int, ...]] = {}
        for comp in state.comps:
            for n in comp:
                comp_of[n] = comp
        nodes = list(state.nodes)
        for n in self.server_ids:
            if n in state.down:
                continue
            node = nodes[n - 1]
            if node.view is None:
                continue
            if set(node.view[1]) == set(comp_of.get(n, ())) \
                    and not node.dirty:
                continue
            s = node.state
            if s is _S.REG_PRIM:
                s = self._step(s, _S.TRANS_PRIM, _I.TRANS_CONF)
            elif s in (_S.EXCHANGE_STATES, _S.EXCHANGE_ACTIONS):
                s = self._step(s, _S.NON_PRIM, _I.TRANS_CONF)
            elif s is _S.CONSTRUCT:
                s = self._step(s, _S.NO, _I.TRANS_CONF)
            nodes[n - 1] = node._replace(state=s, dirty=True)
        return state._replace(nodes=tuple(nodes))

    # ==================================================================
    # knowledge plumbing: the model reuses the real computation
    # ==================================================================
    def _snapshot_for(self, state: GlobalState, epoch: int
                      ) -> Optional[Tuple[Tuple[int, Report], ...]]:
        for e, snapshot in state.reports:
            if e == epoch:
                return snapshot
        return None

    def _reports(self, snapshot: Tuple[Tuple[int, Report], ...]
                 ) -> Dict[int, EngineStateMsg]:
        reports: Dict[int, EngineStateMsg] = {}
        for member, (green, prim, attempt, vuln, yv, yellow) in snapshot:
            vulnerable = Vulnerable()
            if vuln is not None:
                vulnerable.make_valid(vuln[0], vuln[1], vuln[2], -1)
                vulnerable.bits = {m: (m in vuln[3]) for m in vuln[2]}
            reports[member] = EngineStateMsg(
                server_id=member, conf_id=0,
                green_count=len(green), red_cut={}, green_lines={},
                attempt_index=attempt,
                prim_component=PrimComponent(prim[0], prim[1], prim[2]),
                vulnerable=vulnerable, yellow_valid=yv,
                yellow_ids=tuple(yellow))
        return reports

    def _knowledge(self, snapshot: Tuple[Tuple[int, Report], ...]
                   ) -> Knowledge:
        return compute_knowledge(self._reports(snapshot))

    # ==================================================================
    # safety invariants
    # ==================================================================
    def check_safety(self, state: GlobalState,
                     event_kind: Optional[str] = None) -> List[str]:
        """Evaluate the safety invariants; ``event_kind`` (the event
        that produced ``state``) skips invariants that event cannot
        have changed — a pure performance gate, invariant-preserving
        because the skipped checks held in the predecessor."""
        if event_kind == "client":
            return []  # only enqueues inbox messages
        found: List[str] = []
        found.extend(self._check_single_primary(state))
        found.extend(self._check_vulnerable_net(state))
        if event_kind != "fault":  # faults never touch green or prim
            found.extend(self._check_green_prefixes(state))
            found.extend(self._check_unique_installs(state))
        return found

    def _check_single_primary(self, state: GlobalState) -> List[str]:
        epochs = {}
        for n in self.server_ids:
            node = state.nodes[n - 1]
            if n not in state.down and node.state is _S.REG_PRIM:
                assert node.view is not None
                epochs[n] = node.view[0]
        if len(set(epochs.values())) > 1:
            return [f"single-primary: RegPrim in different views "
                    f"{epochs}"]
        return []

    def _check_green_prefixes(self, state: GlobalState) -> List[str]:
        found = []
        greens = [(n, state.nodes[n - 1].green)
                  for n in self.server_ids]
        for i in range(len(greens)):
            for j in range(i + 1, len(greens)):
                (a, ga), (b, gb) = greens[i], greens[j]
                common = min(len(ga), len(gb))
                if ga[:common] != gb[:common]:
                    found.append(
                        f"green-prefix: nodes {a} and {b} diverge: "
                        f"{ga} vs {gb}")
        return found

    def _check_unique_installs(self, state: GlobalState) -> List[str]:
        by_index: Dict[int, Set[Tuple]] = {}
        for n in self.server_ids:
            prim = state.nodes[n - 1].prim
            if prim[0] > 0:
                by_index.setdefault(prim[0], set()).add(
                    (prim[1], prim[2]))
        return [f"unique-install: prim index {idx} installed as "
                f"{sorted(variants)}"
                for idx, variants in by_index.items()
                if len(variants) > 1]

    def _check_vulnerable_net(self, state: GlobalState) -> List[str]:
        """Vulnerable-record correctness, operationally: for the
        maximal installed primary P, any component holding a quorum of
        the *previous* primary's members must contain a holder of P or
        a member still vulnerable to the attempt that installed it —
        otherwise that component could install a divergent primary."""
        best: Optional[Tuple[int, int, Tuple[int, ...]]] = None
        for n in self.server_ids:
            prim = state.nodes[n - 1].prim
            if prim[0] > 0 and (best is None
                                or (prim[0], prim[1]) > best[:2]):
                best = prim
        if best is None:
            return []
        idx, att, _servers = best
        prev_servers: Optional[Tuple[int, ...]] = None
        for n in self.server_ids:
            prim = state.nodes[n - 1].prim
            if prim[0] == idx - 1:
                prev_servers = prim[2]
                break
        if prev_servers is None and idx > 1:
            return []  # the previous installation is fully superseded
        last_prim = prev_servers or ()
        found = []
        for comp in state.comps:
            members = tuple(n for n in comp if n not in state.down)
            if not members:
                continue
            if not self._oracle_policy.is_quorum(
                    members, last_prim, self.server_ids):
                continue
            guarded = False
            for n in members:
                node = state.nodes[n - 1]
                if (node.prim[0], node.prim[1]) >= (idx, att):
                    guarded = True
                elif node.vuln is not None \
                        and node.vuln[0] == idx - 1 \
                        and node.vuln[1] == att:
                    guarded = True
            if not guarded:
                found.append(
                    f"vulnerable-net: component {members} holds a "
                    f"quorum of prim {idx - 1} ({last_prim}) with no "
                    f"holder of, or vulnerability to, install "
                    f"({idx}, {att})")
        return found

    # ==================================================================
    # liveness: quiescence + the wedge oracle
    # ==================================================================
    def quiescent(self, state: GlobalState) -> bool:
        """No delivery, exchange, or view-formation event enabled —
        the system will never move again without a fault or a client."""
        return not any(e.kind in ("deliver", "ds", "retrans",
                                  "form_view")
                       for e in self.enabled_events(state))

    def find_wedges(self, state: GlobalState) -> List[str]:
        """Liveness check for a *quiescent* state: components that are
        stuck although the (unmutated) protocol says a primary should
        exist or an install should have completed."""
        found = []
        for comp in state.comps:
            members = tuple(n for n in comp if n not in state.down)
            if not members:
                continue
            states = {state.nodes[n - 1].state for n in members}
            if _S.CONSTRUCT in states:
                found.append(
                    f"construct-stuck: component {members} quiescent "
                    f"with a member in Construct (votes can no longer "
                    f"arrive)")
                continue
            if states <= {_S.NON_PRIM, _S.UN}:
                snapshot = tuple(
                    (n, (state.nodes[n - 1].green,
                         state.nodes[n - 1].prim,
                         state.nodes[n - 1].attempt,
                         state.nodes[n - 1].vuln,
                         state.nodes[n - 1].yellow_valid,
                         state.nodes[n - 1].yellow))
                    for n in members)
                knowledge = self._knowledge(snapshot)
                kp = knowledge.prim_component
                last_prim = tuple(kp.servers)
                if not knowledge.any_vulnerable() \
                        and self._oracle_policy.is_quorum(
                            members, last_prim, self.server_ids):
                    found.append(
                        f"quorum-wedge: component {members} is "
                        f"quiescent and non-primary, but holds an "
                        f"unvetoed quorum of prim {last_prim}")
        return found


def _append(seq: Tuple[ActionTok, ...],
            tok: ActionTok) -> Tuple[ActionTok, ...]:
    return seq if tok in seq else seq + (tok,)


def canonicalize(state: GlobalState) -> GlobalState:
    """Renumber view epochs by order of first use so states that
    differ only in absolute epoch numbers collapse to one."""
    mapping: Dict[int, int] = {}
    for node in state.nodes:
        if node.view is not None and node.view[0] not in mapping:
            mapping[node.view[0]] = len(mapping)
        for msg in node.inbox:
            if msg[-1] not in mapping:
                mapping[msg[-1]] = len(mapping)
    live = {mapping[node.view[0]] for node in state.nodes
            if node.view is not None}
    identity = all(old == new for old, new in mapping.items())
    if identity and state.epoch_next == len(mapping) and all(
            epoch in mapping and mapping[epoch] in live
            for epoch, _ in state.reports):
        return state  # already canonical: skip the rebuild
    nodes = []
    for node in state.nodes:
        view = node.view
        if view is not None:
            view = (mapping[view[0]], view[1])
        inbox = tuple(msg[:-1] + (mapping[msg[-1]],)
                      for msg in node.inbox)
        nodes.append(node._replace(view=view, inbox=inbox))
    # Only keep snapshots for epochs some live view still references.
    reports = tuple(sorted(
        (mapping[epoch], snapshot)
        for epoch, snapshot in state.reports
        if epoch in mapping and mapping[epoch] in live))
    return state._replace(nodes=tuple(nodes), reports=reports,
                          epoch_next=len(mapping))
