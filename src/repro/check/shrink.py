"""Delta-debugging shrinker for failing fuzz schedules.

Classic ddmin over the schedule's step list: repeatedly try dropping
contiguous chunks (halving the chunk size down to single steps) and
keep any removal after which the run still fails with the *same*
failure name.  The fixed tail (recover + heal + settle + checks) is
appended by ``render_spec`` and is never part of the shrink space, so
the minimization cannot degenerate into "never heal, of course it
diverges".

Everything downstream of the schedule is deterministic, so the shrink
itself is deterministic: same case + same failing schedule ⇒ the same
sequence of candidate runs ⇒ byte-identical shrunk schedule and
byte-identical emitted scenario spec (:func:`spec_json`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .fuzz import (FuzzCase, FuzzResult, ScheduleStep, render_spec,
                   run_schedule)


@dataclass
class ShrinkResult:
    """A minimized failing schedule plus its pinned replay spec."""

    case: FuzzCase
    failure: str
    original_steps: int
    schedule: List[ScheduleStep] = field(default_factory=list)
    runs: int = 0               # candidate executions spent shrinking

    @property
    def spec(self) -> Dict[str, Any]:
        return render_spec(self.case, self.schedule)

    def spec_json(self) -> str:
        """Byte-deterministic serialization of the replay spec."""
        return json.dumps(self.spec, indent=2, sort_keys=True) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.case.seed,
            "failure": self.failure,
            "original_steps": self.original_steps,
            "shrunk_steps": len(self.schedule),
            "runs": self.runs,
            "schedule": [list(s) for s in self.schedule],
            "spec": self.spec,
        }


def shrink(result: FuzzResult,
           max_runs: int = 500) -> Optional[ShrinkResult]:
    """ddmin ``result``'s schedule to a locally minimal failing one.

    Returns None if ``result`` was not a failure.  The outcome is
    1-minimal (no single remaining step can be dropped) unless the
    ``max_runs`` budget ran out first.
    """
    if result.failure is None:
        return None
    case, failure = result.case, result.failure
    out = ShrinkResult(case=case, failure=failure,
                       original_steps=len(result.schedule))

    def still_fails(candidate: List[ScheduleStep]) -> bool:
        out.runs += 1
        return run_schedule(case, candidate).failure == failure

    current = list(result.schedule)
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and out.runs < max_runs:
        i = 0
        while i < len(current) and out.runs < max_runs:
            candidate = current[:i] + current[i + chunk:]
            if still_fails(candidate):
                current = candidate  # keep the removal, retry at i
            else:
                i += chunk
        chunk //= 2
    out.schedule = current
    return out


def write_repro(result: ShrinkResult, path: str) -> None:
    """Write the pinned replay spec where ``tools/scenario.py`` (or
    ``python -m repro.tools.scenario``) can run it directly."""
    with open(path, "w", encoding="utf-8") as handle:  # repro: allow[seam-blocking-io] -- dev-tool output, not protocol durability
        handle.write(result.spec_json())
