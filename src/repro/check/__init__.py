"""Model checking and fault-schedule fuzzing for the Figure-4 machine.

Two complementary correctness instruments over the same protocol:

* :mod:`repro.check.model` + :mod:`repro.check.mc` — an abstract
  N-engine model *derived* from ``core.state_machine.EDGES_BY_INPUT``,
  ``core.knowledge.compute_knowledge`` and the real quorum policies,
  explored exhaustively (bounded BFS) with safety invariants and
  liveness wedge detection, producing minimal counterexample traces;
* :mod:`repro.check.fuzz` + :mod:`repro.check.shrink` — seeded random
  fault schedules run against the real simulator stack end-to-end,
  with ddmin-style shrinking of failing schedules into pinned
  ``tools/scenario.py`` regression specs.

``repro-check`` (:mod:`repro.check.cli`) fronts both.
"""

from .mc import McResult, ModelChecker, Violation, run_check
from .model import (GlobalState, Model, ModelConfig, ModelInternalError,
                    canonicalize)
from .mutations import MUTATIONS, apply_mutation

__all__ = [
    "GlobalState",
    "MUTATIONS",
    "McResult",
    "Model",
    "ModelChecker",
    "ModelConfig",
    "ModelInternalError",
    "Violation",
    "apply_mutation",
    "canonicalize",
    "run_check",
]
