"""Mechanical TLA+ export of the Figure-4 transition system.

Generates a TLA+ module from ``EDGES_BY_INPUT`` — one action predicate
per input kind, one disjunct per declared edge — so the transition
structure can be loaded into TLC or TLAPS alongside the Python
checkers.  The export is *derived at call time* from the same table
the engine executes; nothing here re-declares an edge.

The module covers only the per-server state skeleton (which moves are
legal), not the guard semantics (quorum arithmetic, knowledge
computation) — those live in the abstract model
(:mod:`repro.check.model`), which checks them executably.
"""

from __future__ import annotations

from typing import List

from ..core.state_machine import (EDGES_BY_INPUT, EVS_SHADOWED_EDGES,
                                  EngineInput, EngineState)

MODULE_NAME = "Figure4"


def _predicate_name(event: EngineInput) -> str:
    return "".join(part.capitalize()
                   for part in event.value.split("_"))


def export_tla() -> str:
    """Render the TLA+ module text."""
    lines: List[str] = []
    header = f"---- MODULE {MODULE_NAME} ----"
    lines.append(header)
    lines.append("\\* Generated from repro.core.state_machine."
                 "EDGES_BY_INPUT -- do not edit by hand.")
    lines.append("\\* Regenerate with: repro-check --tla <file>")
    lines.append("EXTENDS Naturals")
    lines.append("")
    lines.append("CONSTANT Servers")
    lines.append("VARIABLE state  \\* server -> Figure-4 engine state")
    lines.append("")
    states = ", ".join(f'"{s.value}"' for s in EngineState)
    lines.append(f"States == {{{states}}}")
    lines.append("")
    lines.append("TypeOK == state \\in [Servers -> States]")
    lines.append("")
    lines.append('Init == state = [s \\in Servers |-> "NonPrim"]')
    lines.append("")
    predicates: List[str] = []
    for event in EngineInput:
        name = _predicate_name(event)
        edges = sorted(EDGES_BY_INPUT[event],
                       key=lambda e: (e[0].value, e[1].value))
        if not edges:
            lines.append(f"\\* {event.value}: never moves the machine "
                         f"(self-loops only).")
            lines.append(f"{name}(s) == UNCHANGED state")
        else:
            lines.append(f"{name}(s) ==")
            for old, new in edges:
                shadow = ""
                if (event, old, new) in EVS_SHADOWED_EDGES:
                    shadow = ("  \\* EVS-shadowed: dynamically "
                              "unreachable")
                lines.append(
                    f'    \\/ /\\ state[s] = "{old.value}"'
                    f'{shadow}')
                lines.append(
                    f'       /\\ state\' = '
                    f'[state EXCEPT ![s] = "{new.value}"]')
            lines.append(f"    \\/ UNCHANGED state  "
                         f"\\* inputs may be no-ops")
        lines.append("")
        predicates.append(name)
    steps = " \\/ ".join(f"{p}(s)" for p in predicates)
    lines.append(f"Next == \\E s \\in Servers : {steps}")
    lines.append("")
    lines.append("Spec == Init /\\ [][Next]_state")
    lines.append("")
    lines.append("=" * len(header))
    return "\n".join(lines) + "\n"


def edge_count() -> int:
    """Number of declared edges (one TLA+ disjunct each)."""
    return sum(len(edges) for edges in EDGES_BY_INPUT.values())
