"""``repro-check`` — model checking + fault fuzzing front end.

Modes (combine freely; at least one required):

* ``--mc`` — bounded-depth exhaustive BFS over the abstract model
  (``--nodes``, ``--depth``, ``--max-states``, fault budgets).  With
  ``--mutate NAME`` a known-bug mutation is applied first;
  ``--expect-violation`` then inverts the exit code (the mutation
  self-test: finding the wedge is the *passing* outcome).
* ``--fuzz`` — seeded random fault schedules against the real
  simulator (``--seeds``, ``--inject-bug`` for the broken tie policy).
  ``--shrink`` minimizes each failure and, with ``--out DIR``, writes
  pinned ``tools/scenario.py`` replay specs.
* ``--coverage`` — Figure-4 edge coverage of the exploration
  portfolio; fails if any live edge is unexercised or an EVS-shadowed
  edge fires.
* ``--tla FILE`` — export the transition system as a TLA+ module.

``--json FILE`` writes the combined machine-readable report (``-`` for
stdout).  Exit code 0 on success, 1 on violations/failures (inverted
by ``--expect-violation``), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Model-check and fuzz the Figure-4 machine.")
    modes = parser.add_argument_group("modes")
    modes.add_argument("--mc", action="store_true",
                       help="run the explicit-state model checker")
    modes.add_argument("--fuzz", action="store_true",
                       help="run seeded fault-schedule fuzzing")
    modes.add_argument("--coverage", action="store_true",
                       help="measure Figure-4 edge coverage")
    modes.add_argument("--tla", metavar="FILE", default=None,
                       help="export the TLA+ module to FILE")

    mc = parser.add_argument_group("model checker")
    mc.add_argument("--nodes", type=int, default=4,
                    help="model size (default 4)")
    mc.add_argument("--depth", type=int, default=12,
                    help="BFS depth bound (default 12)")
    mc.add_argument("--max-states", type=int, default=2_000_000,
                    help="state budget (default 2000000)")
    mc.add_argument("--max-faults", type=int, default=1,
                    help="fault budget (default 1)")
    mc.add_argument("--max-crashes", type=int, default=0,
                    help="crash budget (default 0)")
    mc.add_argument("--max-actions", type=int, default=0,
                    help="client-action budget (default 0)")
    mc.add_argument("--quorum", default="dynamic-linear",
                    choices=("dynamic-linear", "static-majority"),
                    help="quorum policy for the model")
    mc.add_argument("--mutate", default=None,
                    help="apply a known-bug mutation "
                         "(exact-half-tie, cpc-drop)")
    mc.add_argument("--expect-violation", action="store_true",
                    help="succeed iff a violation IS found "
                         "(mutation self-test)")

    fz = parser.add_argument_group("fuzzer")
    fz.add_argument("--seeds", type=int, default=10,
                    help="number of consecutive seeds (default 10)")
    fz.add_argument("--first-seed", type=int, default=0,
                    help="first seed (default 0)")
    fz.add_argument("--fuzz-nodes", type=int, default=4,
                    help="cluster size for fuzz runs (default 4)")
    fz.add_argument("--inject-bug", action="store_true",
                    help="fuzz with the deliberately broken "
                         "both-halves quorum policy")
    fz.add_argument("--shrink", action="store_true",
                    help="ddmin-shrink every failing schedule")
    fz.add_argument("--out", metavar="DIR", default=None,
                    help="write shrunk replay specs into DIR")

    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the combined JSON report "
                             "(- for stdout)")
    args = parser.parse_args(argv)

    if not (args.mc or args.fuzz or args.coverage or args.tla):
        parser.error("pick at least one mode: "
                     "--mc / --fuzz / --coverage / --tla")

    report: Dict[str, Any] = {}
    problems = 0       # everything that should fail a clean run
    found = 0          # mc violations + fuzz failures (for --expect-violation)

    if args.mc:
        mc_violations = _run_mc(args, report)
        problems += mc_violations
        found += mc_violations

    if args.coverage:
        from .coverage import measure_coverage
        cov = measure_coverage()
        report["coverage"] = cov.to_dict()
        if cov.ok:
            print(f"coverage: all {len(cov.covered)} live Figure-4 "
                  f"edges exercised; shadowed edges quiet")
        else:
            problems += len(cov.uncovered) + len(cov.shadowed_exercised)
            for edge in sorted(map(str, cov.uncovered)):
                print(f"coverage: UNCOVERED edge {edge}")
            for edge in sorted(map(str, cov.shadowed_exercised)):
                print(f"coverage: EVS-shadowed edge exercised: {edge}")

    if args.fuzz:
        fuzz_failures = _run_fuzz(args, report)
        problems += fuzz_failures
        found += fuzz_failures

    if args.tla:
        from .tla import export_tla
        text = export_tla()
        with open(args.tla, "w", encoding="utf-8") as handle:  # repro: allow[seam-blocking-io] -- CLI report file, not protocol durability
            handle.write(text)
        print(f"tla: wrote {args.tla} ({len(text.splitlines())} lines)")
        report["tla"] = {"path": args.tla,
                         "lines": len(text.splitlines())}

    if args.json:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:  # repro: allow[seam-blocking-io] -- CLI report file, not protocol durability
                handle.write(payload + "\n")

    if args.expect_violation:
        if found:
            return 0
        print("expected a violation, found none", file=sys.stderr)
        return 1
    return 1 if problems else 0


def _run_mc(args: argparse.Namespace,
            report: Dict[str, Any]) -> int:
    from .mc import ModelChecker
    from .model import ModelConfig
    from .mutations import apply_mutation
    config = ModelConfig(
        nodes=args.nodes, max_faults=args.max_faults,
        max_crashes=args.max_crashes, max_actions=args.max_actions,
        quorum=args.quorum)
    if args.mutate:
        config = apply_mutation(config, args.mutate)
    checker = ModelChecker(
        config, max_depth=args.depth, max_states=args.max_states,
        max_violations=1 if args.expect_violation else 25)
    result = checker.run()
    report["mc"] = result.to_dict()
    print(f"mc: {result.states} states, {result.transitions} "
          f"transitions, depth {result.depth_reached}, "
          f"{result.quiescent_states} quiescent, "
          f"{'complete' if result.complete else 'budget-bounded'}")
    for violation in result.violations:
        print(violation.format())
    return len(result.violations)


def _run_fuzz(args: argparse.Namespace,
              report: Dict[str, Any]) -> int:
    from .fuzz import FuzzCase, run_campaign
    from .shrink import shrink, write_repro
    base = FuzzCase(
        seed=0, nodes=args.fuzz_nodes,
        quorum="both-halves" if args.inject_bug else "dynamic-linear")
    campaign = run_campaign(seeds=args.seeds, base=base,
                            first_seed=args.first_seed)
    entry: Dict[str, Any] = campaign.to_dict()
    print(f"fuzz: {len(campaign.results)} seeds, "
          f"{len(campaign.failures)} failures")
    shrunk_reports = []
    for failure in campaign.failures:
        print(f"fuzz: seed {failure.case.seed} FAILED "
              f"{failure.failure}: {failure.detail}")
        if args.shrink:
            minimized = shrink(failure)
            assert minimized is not None
            print(f"fuzz: shrunk seed {failure.case.seed} "
                  f"{minimized.original_steps} -> "
                  f"{len(minimized.schedule)} steps "
                  f"({minimized.runs} runs)")
            shrunk_reports.append(minimized.to_dict())
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                path = os.path.join(
                    args.out,
                    f"repro-seed{failure.case.seed}.json")
                write_repro(minimized, path)
                print(f"fuzz: wrote replay spec {path}")
    if shrunk_reports:
        entry["shrunk"] = shrunk_reports
    report["fuzz"] = entry
    return len(campaign.failures)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
