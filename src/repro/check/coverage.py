"""Figure-4 edge coverage of the model-checking portfolio.

Answers: does the checker actually *exercise* every declared edge of
``EDGES_BY_INPUT``?  An edge no exploration ever takes is an edge the
checker silently fails to check — this report pins the uncovered count
at zero (minus :data:`~repro.core.state_machine.EVS_SHADOWED_EDGES`,
which extended virtual synchrony makes dynamically unreachable; those
must stay *unexercised*, and the report flags them if they ever fire).

Coverage unions two sources:

* a **portfolio** of small exhaustive BFS runs (2–3 nodes) that cover
  the bulk of the table cheaply;
* **directed traces** — scripted event sequences through the 4-node
  model for the deepest edges (the exchange-actions retransmission
  endings), each step validated against ``enabled_events`` so a trace
  that goes stale fails loudly instead of silently covering nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set, Tuple

from ..core.state_machine import (EDGES_BY_INPUT, EVS_SHADOWED_EDGES,
                                  EngineInput, EngineState)
from .mc import ModelChecker
from .model import EdgeUse, Event, Model, ModelConfig, canonicalize

#: The exhaustive portion: (label, config, depth) — each explores its
#: configuration completely within the depth bound in a few seconds.
PORTFOLIO: Tuple[Tuple[str, ModelConfig, int], ...] = (
    ("2n-bootstrap",
     ModelConfig(nodes=2, max_faults=0, max_crashes=0, max_actions=0), 8),
    ("2n-faults",
     ModelConfig(nodes=2, max_faults=2, max_crashes=0, max_actions=1), 14),
    ("2n-crash",
     ModelConfig(nodes=2, max_faults=2, max_crashes=1, max_actions=1), 12),
    ("3n-full",
     ModelConfig(nodes=3, max_faults=2, max_crashes=1, max_actions=1), 10),
)

#: Directed traces: (label, config, events).  Event operands use the
#: model's native shapes.  The first trace walks the exact-half
#: lagging-component path: node 2 misses one green action, exchanges
#: inside the quorumless half {2, 3} of the four-member primary, and
#: ends its retransmission in NonPrim — the deepest Figure-4 edge
#: (action, ExchangeActions -> NonPrim), out of reach of the small
#: exhaustive runs.
DIRECTED_TRACES: Tuple[Tuple[str, ModelConfig,
                             Tuple[Event, ...]], ...] = (
    ("4n-exact-half-retrans",
     ModelConfig(nodes=4, max_faults=1, max_crashes=0, max_actions=1),
     (
         Event("form_view", ((1, 2, 3, 4),)),
         Event("ds", (1,)),
         Event("ds", (2,)),
         Event("ds", (3,)),
         Event("ds", (4,)),
         Event("deliver", (2,)),   # node 2 installs, becomes RegPrim
         Event("client", (2,)),    # one action multicast to everyone
         Event("deliver", (3,)),   # node 3 installs and greens it
         Event("fault", ("partition", (1, 2, 3, 4), (1, 4), (2, 3))),
         Event("form_view", ((2, 3),)),
         Event("ds", (2,)),        # node 2 lags node 3's green by one
         Event("retrans", (2,)),   # ends exchange: no quorum -> NonPrim
     )),
    # Same setup, but the network moves again while node 2 still sits
    # in ExchangeActions waiting for the retransmission: the
    # transitional configuration aborts the exchange
    # (trans_conf, ExchangeActions -> NonPrim).
    ("4n-trans-conf-in-exchange",
     ModelConfig(nodes=4, max_faults=2, max_crashes=0, max_actions=1),
     (
         Event("form_view", ((1, 2, 3, 4),)),
         Event("ds", (1,)),
         Event("ds", (2,)),
         Event("ds", (3,)),
         Event("ds", (4,)),
         Event("deliver", (2,)),
         Event("client", (2,)),
         Event("deliver", (3,)),
         Event("fault", ("partition", (1, 2, 3, 4), (1, 4), (2, 3))),
         Event("form_view", ((2, 3),)),
         Event("ds", (2,)),        # node 2 in ExchangeActions, lagging
         Event("fault", ("merge", (1, 4), (2, 3))),
     )),
)


@dataclass
class CoverageReport:
    """Which declared edges the exploration portfolio exercised."""

    covered: Set[EdgeUse] = field(default_factory=set)
    uncovered: Set[EdgeUse] = field(default_factory=set)
    shadowed_exercised: Set[EdgeUse] = field(default_factory=set)
    runs: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.uncovered and not self.shadowed_exercised

    def to_dict(self) -> Dict[str, Any]:
        def fmt(edges: Set[EdgeUse]) -> List[List[str]]:
            return sorted([str(i), str(a), str(b)] for i, a, b in edges)
        return {
            "total_edges": len(all_declared_edges()),
            "live_edges": len(live_edges()),
            "covered": len(self.covered),
            "uncovered": fmt(self.uncovered),
            "shadowed_exercised": fmt(self.shadowed_exercised),
            "runs": self.runs,
        }


def all_declared_edges() -> Set[EdgeUse]:
    return {(event, old, new)
            for event, edges in EDGES_BY_INPUT.items()
            for old, new in edges}


def live_edges() -> Set[EdgeUse]:
    """Declared edges minus the EVS-shadowed ones."""
    return all_declared_edges() - set(EVS_SHADOWED_EDGES)


def run_trace(config: ModelConfig,
              events: Sequence[Event]) -> Model:
    """Apply a scripted event sequence, insisting each step is
    currently enabled — a stale trace raises instead of lying."""
    model = Model(config)
    state = canonicalize(model.initial_state())
    for event in events:
        enabled = model.enabled_events(state)
        if event not in enabled:
            raise AssertionError(
                f"directed trace step {event.describe()} is not "
                f"enabled; enabled: "
                f"{[e.describe() for e in enabled]}")
        state = model.apply_event(state, event)
        if model.violations:
            raise AssertionError(
                f"directed trace hit violations: {model.violations}")
    return model


def measure_coverage(extra_edges: Set[EdgeUse] = frozenset()
                     ) -> CoverageReport:
    """Run the portfolio + directed traces; union all exercised edges
    (plus ``extra_edges`` from any other run the caller made)."""
    report = CoverageReport()
    seen: Set[EdgeUse] = set(extra_edges)
    for label, config, depth in PORTFOLIO:
        result = ModelChecker(config, max_depth=depth).run()
        if result.violations:
            raise AssertionError(
                f"coverage run {label} found violations: "
                f"{[v.rule for v in result.violations]}")
        seen |= result.edges_seen
        report.runs.append({"run": label, "states": result.states,
                            "edges": len(result.edges_seen),
                            "complete": result.complete})
    for label, config, events in DIRECTED_TRACES:
        model = run_trace(config, events)
        seen |= model.edges_seen
        report.runs.append({"run": label, "states": len(events),
                            "edges": len(model.edges_seen),
                            "complete": True})
    live = live_edges()
    report.covered = seen & live
    report.uncovered = live - seen
    report.shadowed_exercised = seen & set(EVS_SHADOWED_EDGES)
    return report
