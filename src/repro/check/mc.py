"""Explicit-state model checker over the abstract Figure-4 model.

Breadth-first exploration with canonical-state deduplication.  BFS
order makes every reported counterexample *minimal*: the trace to a
violating state is a shortest event sequence reaching it.

Checked per reachable state:

* safety — at most one regular primary, pairwise green-prefix
  consistency, unique installation per primary index, and the
  vulnerable-record guard (every component holding a quorum of the
  previous primary contains an install holder or a still-vulnerable
  member);
* liveness — on *quiescent* states (no delivery, exchange, or
  view-formation event enabled), wedge detection: a member stuck in
  Construct, or a settled non-primary component that the unmutated
  reference protocol says should form a primary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .model import (EdgeUse, Event, GlobalState, Model, ModelConfig,
                    canonicalize)


@dataclass
class Violation:
    """One invariant violation with its minimal counterexample."""

    kind: str              # "safety" or "wedge"
    rule: str              # e.g. "green-prefix", "construct-stuck"
    message: str
    trace: List[str]       # event descriptions from the initial state
    depth: int
    state_summary: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rule": self.rule,
                "message": self.message, "depth": self.depth,
                "trace": self.trace,
                "state": self.state_summary}

    def format(self) -> str:
        lines = [f"[{self.kind}:{self.rule}] {self.message}",
                 f"  counterexample ({self.depth} events):"]
        lines.extend(f"    {i + 1}. {step}"
                     for i, step in enumerate(self.trace))
        states = self.state_summary.get("states")
        if states:
            lines.append(f"  final states: {states}")
        return "\n".join(lines)


@dataclass
class McResult:
    """Outcome of one bounded-depth exploration."""

    config: ModelConfig
    states: int = 0
    transitions: int = 0
    depth_reached: int = 0
    quiescent_states: int = 0
    #: True when every state within the depth bound was explored —
    #: i.e. neither the ``max_states`` budget nor the violation cap
    #: cut the search short (the depth bound itself is the contract,
    #: not a truncation).
    complete: bool = False
    violations: List[Violation] = field(default_factory=list)
    edges_seen: Set[EdgeUse] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": {
                "nodes": self.config.nodes,
                "max_faults": self.config.max_faults,
                "max_crashes": self.config.max_crashes,
                "max_actions": self.config.max_actions,
                "quorum": self.config.quorum,
                "tie_breaker": self.config.tie_breaker,
                "buffer_early_cpc": self.config.buffer_early_cpc,
            },
            "states": self.states,
            "transitions": self.transitions,
            "depth_reached": self.depth_reached,
            "quiescent_states": self.quiescent_states,
            "complete": self.complete,
            "violations": [v.to_dict() for v in self.violations],
            "edges_seen": sorted(
                [str(i), str(a), str(b)] for i, a, b in self.edges_seen),
        }


def _summarize(model: Model, state: GlobalState) -> Dict[str, Any]:
    return {
        "states": {n: str(state.nodes[n - 1].state)
                   for n in model.server_ids if n not in state.down},
        "components": [list(c) for c in state.comps],
        "down": sorted(state.down),
        "greens": {n: [list(t) for t in state.nodes[n - 1].green]
                   for n in model.server_ids
                   if state.nodes[n - 1].green},
    }


class ModelChecker:
    """Bounded-depth BFS over the abstract model."""

    def __init__(self, config: Optional[ModelConfig] = None,
                 max_depth: int = 12,
                 max_states: int = 2_000_000,
                 max_violations: int = 25) -> None:
        self.config = config or ModelConfig()
        self.max_depth = max_depth
        self.max_states = max_states
        self.max_violations = max_violations
        self.model = Model(self.config)

    # ------------------------------------------------------------------
    def run(self) -> McResult:
        model = self.model
        result = McResult(config=self.config)
        initial = canonicalize(model.initial_state())
        parent: Dict[GlobalState,
                     Optional[Tuple[GlobalState, Event]]] = {
            initial: None}
        depth_of: Dict[GlobalState, int] = {initial: 0}
        queue: deque = deque([initial])
        seen_rules: Set[Tuple[str, str]] = set()
        truncated = False

        while queue:
            state = queue.popleft()
            depth = depth_of[state]
            result.states += 1
            result.depth_reached = max(result.depth_reached, depth)

            events = model.enabled_events(state)
            if not any(e.kind in ("deliver", "ds", "retrans",
                                  "form_view") for e in events):
                result.quiescent_states += 1
                for finding in model.find_wedges(state):
                    self._record(result, "wedge", finding, state,
                                 parent, depth_of, model, seen_rules)
            if len(result.violations) >= self.max_violations:
                truncated = True
                break
            if depth >= self.max_depth:
                continue
            for event in events:
                successor = model.apply_event(state, event)
                result.transitions += 1
                fresh = successor not in depth_of
                if fresh:
                    depth_of[successor] = depth + 1
                    parent[successor] = (state, event)
                    if len(depth_of) <= self.max_states:
                        queue.append(successor)
                    else:
                        truncated = True
                for finding in model.violations:
                    self._record(result, "safety", finding, successor,
                                 parent, depth_of, model, seen_rules)

        result.edges_seen = set(model.edges_seen)
        result.complete = not truncated
        return result

    # ------------------------------------------------------------------
    def _record(self, result: McResult, kind: str, finding: str,
                state: GlobalState, parent: Dict, depth_of: Dict,
                model: Model, seen_rules: Set[Tuple[str, str]]) -> None:
        rule, _, message = finding.partition(":")
        key = (kind, rule)
        if key in seen_rules:
            return  # one minimal counterexample per rule is enough
        seen_rules.add(key)
        result.violations.append(Violation(
            kind=kind, rule=rule.strip(), message=message.strip(),
            trace=self._trace(state, parent),
            depth=depth_of.get(state, 0),
            state_summary=_summarize(model, state)))

    @staticmethod
    def _trace(state: GlobalState, parent: Dict) -> List[str]:
        steps: List[str] = []
        cursor: Optional[GlobalState] = state
        while cursor is not None and parent.get(cursor) is not None:
            prev, event = parent[cursor]
            steps.append(event.describe())
            cursor = prev
        steps.reverse()
        return steps


def run_check(nodes: int = 4, depth: int = 12,
              mutate: Optional[str] = None,
              max_faults: int = 2, max_crashes: int = 1,
              max_actions: int = 1,
              quorum: str = "dynamic-linear",
              max_states: int = 2_000_000) -> McResult:
    """One-call front door used by the CLI and the tests."""
    from .mutations import apply_mutation
    config = ModelConfig(nodes=nodes, max_faults=max_faults,
                         max_crashes=max_crashes,
                         max_actions=max_actions, quorum=quorum)
    if mutate:
        config = apply_mutation(config, mutate)
    checker = ModelChecker(config, max_depth=depth,
                           max_states=max_states)
    return checker.run()
