"""Known-bug mutations for the checker self-test and fuzz injection.

The two abstract-model mutations revert, *in the model only*, the two
liveness fixes the repo already carries (the real code is untouched):

* ``exact-half-tie`` — dynamic linear voting without the distinguished
  member: an exact half of the last primary no longer wins the tie, so
  a clean 50/50 split can leave both components without a quorum
  forever (the wedge PR 1 fixed with ``min(prim)``).
* ``cpc-drop`` — CPC votes arriving while the receiver is still in
  ExchangeStates/ExchangeActions are dropped instead of buffered, so a
  member whose exchange lags can miss its peers' votes and sit in
  Construct forever (the wedge PR 4 fixed with ``_cpc_received``).

Against the *fixed* model both must produce a wedge counterexample —
proving the checker would have caught the original bugs.

:class:`BothHalvesQuorum` is the fuzz-side injectable bug: a quorum
policy under which *both* halves of an exact split believe they hold
the quorum, driving the real simulator into divergence so the fuzzer
and shrinker have a genuine safety failure to find and minimize.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Tuple

from ..core.quorum import DynamicLinearVoting, QuorumPolicy
from .model import ModelConfig

#: mutation name -> (ModelConfig field overrides, description).
MUTATIONS: Dict[str, Dict[str, object]] = {
    "exact-half-tie": {
        "overrides": {"tie_breaker": False},
        "description": (
            "dynamic linear voting without the distinguished-member "
            "tie breaker: exact halves never form a quorum"),
        "expected_rule": "quorum-wedge",
    },
    "cpc-drop": {
        "overrides": {"buffer_early_cpc": False},
        "description": (
            "CPC votes delivered during ExchangeStates/ExchangeActions "
            "are dropped instead of buffered"),
        "expected_rule": "construct-stuck",
    },
}


def apply_mutation(config: ModelConfig, name: str) -> ModelConfig:
    """Return ``config`` with the named known-bug mutation applied."""
    try:
        spec = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; "
            f"known: {', '.join(sorted(MUTATIONS))}") from None
    overrides = spec["overrides"]
    assert isinstance(overrides, dict)
    return replace(config, **overrides)


class BothHalvesQuorum(QuorumPolicy):
    """Deliberately broken policy: on an exact-half split of the last
    primary, *both* halves win.  Used only to inject a reproducible
    safety bug into the real simulator for fuzzer/shrinker tests."""

    def __init__(self) -> None:
        self._fixed = DynamicLinearVoting()

    def is_quorum(self, connected: Iterable[int],
                  last_prim_servers: Tuple[int, ...],
                  all_servers: Iterable[int]) -> bool:
        reference = (set(last_prim_servers) if last_prim_servers
                     else set(all_servers))
        present = set(connected) & reference
        if reference and 2 * len(present) == len(reference):
            return True  # the bug: no tie breaker, everyone wins
        return self._fixed.is_quorum(connected, last_prim_servers,
                                     all_servers)

    def describe(self) -> str:
        return "both-halves-quorum (injected bug)"
