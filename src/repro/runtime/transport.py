"""Live :class:`~repro.runtime.base.Transport` implementations.

Two backends for the asyncio runtime:

* :class:`MemoryTransport` — all nodes in one process, datagrams handed
  across through the runtime's timer queue with a small configurable
  latency.  No sockets, no serialization; the backend of choice for
  conformance tests and single-process live clusters.
* :class:`AsyncioTransport` — real UDP sockets (one per hosted node,
  loopback or LAN), datagrams framed by the struct-packed binary codec
  (:mod:`repro.net.codec`), non-blocking receive via
  ``loop.add_reader``.  A process hosts any subset of the cluster's
  nodes; the address map names them all.

Both support *software partitions*: a partition map assigned with
``partition(groups)`` drops datagrams crossing group boundaries — at
send time and again at delivery time, mirroring the simulated fabric's
semantics (a partition cuts messages already in flight).  In a
multi-process deployment every process installs the same partition
schedule locally; there is no hidden global coordinator.

UDP is lossy by nature and these transports make no reliability
promises — exactly the contract the GCS daemon's NACK and flush
machinery is built for.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..net import codec
from ..net.message import Datagram
from .asyncio_runtime import AsyncioRuntime

Handler = Callable[[Datagram], None]

# Practical UDP payload ceiling on loopback (the kernel fragments up to
# 64 KiB; snapshot chunks are 8 KiB, so this is headroom, not a limit
# the protocol layers ever approach).
_MAX_DGRAM = 60000


class PartitionFilter:
    """Software reachability: node -> component id, empty = connected."""

    def __init__(self) -> None:
        self._component: Dict[int, int] = {}

    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Split the cluster; nodes absent from every group form their
        own implicit singleton components."""
        self._component = {}
        for index, group in enumerate(groups):
            for node in group:
                self._component[node] = index

    def heal(self) -> None:
        self._component = {}

    def allows(self, src: int, dst: int) -> bool:
        if src == dst or not self._component:
            return True
        a = self._component.get(src, -1 - src)
        b = self._component.get(dst, -1 - dst)
        return a == b


class MemoryTransport:
    """In-process datagram fabric over an :class:`AsyncioRuntime`.

    Every hosted node shares this object; a send posts the delivery
    callback ``latency`` seconds ahead on the runtime.  Reachability is
    checked at send *and* delivery time so a partition installed while
    a datagram is in flight still cuts it.
    """

    def __init__(self, runtime: AsyncioRuntime, latency: float = 0.0002):
        self.runtime = runtime
        self.latency = latency
        self.filter = PartitionFilter()
        self._handlers: Dict[int, Handler] = {}
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0
        self.bytes_sent = 0

    # -- attachment -----------------------------------------------------
    def attach(self, node: int, handler: Handler) -> None:
        self._handlers[node] = handler

    def detach(self, node: int) -> None:
        self._handlers.pop(node, None)

    def is_attached(self, node: int) -> bool:
        return node in self._handlers

    # -- partitions -----------------------------------------------------
    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        self.filter.partition(groups)

    def heal(self) -> None:
        self.filter.heal()

    # -- sending --------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any,
             size: int = 200) -> None:
        self.multicast(src, (dst,), payload, size)

    def multicast(self, src: int, dsts: Iterable[int], payload: Any,
                  size: int = 200) -> None:
        if src not in self._handlers:
            return
        now = self.runtime.now
        for dst in dsts:
            self.datagrams_sent += 1
            self.bytes_sent += size
            if not self.filter.allows(src, dst):
                self.datagrams_dropped += 1
                continue
            self.runtime.post(self.latency, self._deliver,
                              Datagram(src, dst, payload, size, now))

    def _deliver(self, datagram: Datagram) -> None:
        if not self.filter.allows(datagram.src, datagram.dst):
            self.datagrams_dropped += 1
            return
        handler = self._handlers.get(datagram.dst)
        if handler is None:
            self.datagrams_dropped += 1
            return
        self.datagrams_delivered += 1
        handler(datagram)


class AsyncioTransport:
    """UDP datagram fabric: one socket per *hosted* node.

    ``addresses`` maps every node id in the deployment to its
    ``(host, port)``.  :meth:`open` binds the socket for a locally
    hosted node (synchronously — sockets are non-blocking and reads are
    dispatched through ``loop.add_reader``); ``attach`` then binds the
    receive handler.  Pre-bound sockets can be injected instead
    (``open(node, sock=...)``), which lets a parent process bind all
    ports race-free and fork the cluster.

    Wire format: the struct-packed frames of :mod:`repro.net.codec`
    (compact encoders for the hot protocol messages, pickle escape
    hatch for everything else).  The escape hatch means frames are only
    safe from trusted endpoints — every node of a deployment is part of
    one trust domain, exactly as with multiprocessing.  Do not expose
    these ports to untrusted networks.

    ``bytes_sent`` counts *real encoded bytes* handed to the kernel
    (loopback deliveries count their declared size — they are never
    encoded); received ``Datagram.size`` is the actual frame length,
    not the sender's hand-estimate.
    """

    def __init__(self, runtime: AsyncioRuntime,
                 addresses: Dict[int, Tuple[str, int]]):
        self.runtime = runtime
        self.addresses = dict(addresses)
        self.filter = PartitionFilter()
        self._handlers: Dict[int, Handler] = {}
        self._sockets: Dict[int, socket.socket] = {}
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0
        self.bytes_sent = 0

    # -- socket lifecycle ----------------------------------------------
    def open(self, node: int,
             sock: Optional[socket.socket] = None) -> None:
        """Bind (or adopt) the UDP socket for a locally hosted node."""
        if node in self._sockets:
            return
        if sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(self.addresses[node])
        sock.setblocking(False)
        self.addresses[node] = sock.getsockname()
        self._sockets[node] = sock
        self.runtime.loop.add_reader(sock.fileno(), self._on_readable,
                                     node, sock)

    def close(self) -> None:
        """Close every hosted socket (end of deployment)."""
        for node, sock in self._sockets.items():
            try:
                self.runtime.loop.remove_reader(sock.fileno())
            except (ValueError, OSError):  # pragma: no cover - shutdown
                pass
            sock.close()
        self._sockets = {}
        self._handlers = {}

    # -- attachment -----------------------------------------------------
    def attach(self, node: int, handler: Handler) -> None:
        if node not in self._sockets:
            self.open(node)
        self._handlers[node] = handler

    def detach(self, node: int) -> None:
        """Silence a node; the socket stays bound for a later recover."""
        self._handlers.pop(node, None)

    def is_attached(self, node: int) -> bool:
        return node in self._handlers

    # -- partitions -----------------------------------------------------
    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        self.filter.partition(groups)

    def heal(self) -> None:
        self.filter.heal()

    # -- sending --------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any,
             size: int = 200) -> None:
        self.multicast(src, (dst,), payload, size)

    def multicast(self, src: int, dsts: Iterable[int], payload: Any,
                  size: int = 200) -> None:
        sock = self._sockets.get(src)
        if sock is None or src not in self._handlers:
            return
        blob: Optional[bytes] = None
        for dst in dsts:
            self.datagrams_sent += 1
            if not self.filter.allows(src, dst):
                self.datagrams_dropped += 1
                continue
            if dst == src:
                # Loopback without a kernel round-trip, but still
                # asynchronous: the handler runs on a later loop tick,
                # never re-entrantly inside the send.  Never encoded,
                # so billed at its declared size.
                self.bytes_sent += size
                self.runtime.loop.call_soon(
                    self._local_deliver,
                    Datagram(src, dst, payload, size, self.runtime.now))
                continue
            addr = self.addresses.get(dst)
            if addr is None:
                self.datagrams_dropped += 1
                continue
            if blob is None:
                blob = codec.encode_frame(src, payload)
                if len(blob) > _MAX_DGRAM:
                    raise ValueError(
                        f"datagram payload too large for UDP: "
                        f"{len(blob)} bytes ({type(payload).__name__})")
            self.bytes_sent += len(blob)
            try:
                sock.sendto(blob, addr)
            except OSError:
                # Full socket buffer or transient network error: UDP
                # semantics say drop; the GCS NACK path recovers.
                self.datagrams_dropped += 1

    def _local_deliver(self, datagram: Datagram) -> None:
        if not self.filter.allows(datagram.src, datagram.dst):
            self.datagrams_dropped += 1
            return
        handler = self._handlers.get(datagram.dst)
        if handler is None:
            self.datagrams_dropped += 1
            return
        self.datagrams_delivered += 1
        handler(datagram)

    # -- receiving ------------------------------------------------------
    def _on_readable(self, node: int, sock: socket.socket) -> None:
        # Drain everything ready; add_reader fires once per readability
        # edge, not once per datagram.
        while True:
            try:
                blob, _addr = sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover - socket torn down
                return
            try:
                src, payload = codec.decode_frame(blob)
            except codec.CodecError:
                # Garbage off the wire is a counted drop, never a
                # crashed receive loop.
                self.datagrams_dropped += 1
                continue
            if not self.filter.allows(src, node):
                self.datagrams_dropped += 1
                continue
            handler = self._handlers.get(node)
            if handler is None:
                self.datagrams_dropped += 1
                continue
            self.datagrams_delivered += 1
            handler(Datagram(src, node, payload, len(blob),
                             self.runtime.now))


def loopback_addresses(server_ids: Sequence[int],
                       host: str = "127.0.0.1") -> Dict[int, Tuple[str, int]]:
    """Bind-to-zero address map: every node on an OS-assigned loopback
    port.  Useful for single-process deployments; multi-process ones
    should bind sockets in the parent (``AsyncioTransport.open(node,
    sock=...)``) so children agree on the ports."""
    return {node: (host, 0) for node in server_ids}
