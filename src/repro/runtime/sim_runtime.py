"""The discrete-event runtime: the simulation kernel behind the
:class:`~repro.runtime.base.Runtime` protocol.

``SimRuntime`` *is* the kernel — a zero-override subclass of
:class:`~repro.sim.kernel.Simulator`.  Nothing is wrapped or delegated,
so the raw-tuple ``post``/``post_at`` fast path, the heap-compaction
logic, and the direct heap pushes in :class:`~repro.net.Network` are
preserved bit-for-bit: a scenario run on ``SimRuntime`` dispatches
exactly the same events in exactly the same order as on a bare
``Simulator``.  The ``runtime_adapter`` scenario of
``benchmarks/bench_wallclock.py`` enforces this structurally — the
subclass may never define an attribute of its own — and benchmarks the
dispatch loop against the bare kernel for gross regressions.

The subclass exists so deployment code can say what it means —
"build me the deterministic runtime" — and so a future split of kernel
internals from the public runtime surface has a place to land without
touching call sites.
"""

from __future__ import annotations

from ..sim.kernel import Simulator


class SimRuntime(Simulator):
    """Deterministic discrete-event :class:`Runtime`.

    Pair it with :class:`~repro.net.Network` (the simulated
    :class:`~repro.runtime.base.Transport`) for virtual-time deployments
    with seeded loss, latency, and partitions.
    """

    __slots__ = ()
