"""Execution runtimes for the replication stack.

The protocol layers (engine, GCS daemon, storage) are written against
two narrow protocols — :class:`Runtime` (clock + timers) and
:class:`Transport` (datagram fabric) — and this package provides both
production pairs:

============================  =========================================
deterministic (virtual time)  :class:`SimRuntime` +
                              :class:`repro.net.Network`
live (wall-clock, asyncio)    :class:`AsyncioRuntime` +
                              :class:`AsyncioTransport` (UDP) or
                              :class:`MemoryTransport` (in-process)
============================  =========================================

:class:`LiveCluster` is the asyncio counterpart of
:class:`repro.core.ReplicaCluster`; ``examples/live_cluster.py`` drives
a real three-process deployment with it.
"""

from .asyncio_runtime import AsyncioHandle, AsyncioRuntime
from .base import Handle, Runtime, Transport
from .cluster import (LiveCluster, LiveClusterTimeout, live_disk_profile,
                      live_gcs_settings, udp_cluster)
from .sim_runtime import SimRuntime
from .transport import (AsyncioTransport, MemoryTransport, PartitionFilter,
                        loopback_addresses)

__all__ = [
    "Runtime", "Handle", "Transport",
    "SimRuntime",
    "AsyncioRuntime", "AsyncioHandle",
    "MemoryTransport", "AsyncioTransport", "PartitionFilter",
    "loopback_addresses",
    "LiveCluster", "LiveClusterTimeout", "udp_cluster",
    "live_gcs_settings", "live_disk_profile",
]
