"""LiveCluster: drive the replication stack on a real asyncio loop.

The wall-clock counterpart of :class:`~repro.core.ReplicaCluster`: same
replica stack (disk, WAL, store, database, GCS daemon, engine), but on
an :class:`AsyncioRuntime` with a live transport instead of the
discrete-event simulator — which is the whole point of the Runtime and
Transport seams: *no protocol code changes between the two*.

A ``LiveCluster`` may host all of the deployment's nodes (single
process, :class:`MemoryTransport` or UDP loopback) or a subset
(multi-process deployment: every process hosts its share and the
``AsyncioTransport`` address map names the rest).

Because wall-clock time cannot be stepped, the driving style is
``await``-based::

    cluster = LiveCluster([1, 2, 3])
    cluster.start_all()
    await cluster.wait_all_engine_state(EngineState.REG_PRIM, timeout=10)
    cluster.submit(1, ("SET", "k", 1))
    await cluster.wait_green(1, timeout=5)
    cluster.partition([1, 2], [3])
    ...
    cluster.assert_same_green_order()
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.client import Client
from ..core.engine import EngineConfig
from ..core.replica import Replica
from ..core.state_machine import EngineState
from ..db import ActionId
from ..gcs import GcsSettings
from ..obs import MetricsServer, Observability
from ..sim.trace import Tracer
from ..storage import DiskProfile
from .asyncio_runtime import AsyncioRuntime
from .transport import AsyncioTransport, MemoryTransport


class LiveClusterTimeout(AssertionError):
    """A :meth:`LiveCluster.wait_until` deadline expired."""


def live_disk_profile() -> DiskProfile:
    """Disk timings for live runs: real fsync latency would make every
    wall-clock test crawl; 0.5 ms keeps the durability ordering
    observable without dominating the run."""
    return DiskProfile(forced_write_latency=0.0005,
                       async_write_latency=0.00002)


def live_gcs_settings(**overrides: Any) -> GcsSettings:
    """GCS timers for live loopback runs.

    Tighter than the LAN defaults where safe (loopback latency is tens
    of microseconds) but with generous failure/phase timeouts so CI
    scheduler jitter does not masquerade as a network fault.
    """
    params: Dict[str, Any] = dict(
        heartbeat_interval=0.030, failure_timeout=0.300,
        gather_settle=0.080, phase_timeout=0.800,
        nack_timeout=0.020, use_topology_hints=False)
    params.update(overrides)
    return GcsSettings(**params)


class LiveCluster:
    """A cluster of replicas running on one asyncio event loop."""

    def __init__(self, server_ids: Sequence[int], *,
                 hosted: Optional[Sequence[int]] = None,
                 runtime: Optional[AsyncioRuntime] = None,
                 transport: Optional[Any] = None,
                 gcs_settings: Optional[GcsSettings] = None,
                 engine_config: Optional[EngineConfig] = None,
                 disk_profile: Optional[DiskProfile] = None,
                 trace: bool = True,
                 trace_limit: Optional[int] = 100_000,
                 observability: Optional[Observability] = None,
                 shard: int = 0):
        self.server_ids = list(server_ids)
        self.hosted = list(hosted) if hosted is not None else list(server_ids)
        # Which replication group of a shard fabric this cluster is;
        # 0 is the standalone single-group deployment.  The shard id
        # namespaces the GCS group on a shared transport.
        self.shard = shard
        self.runtime = runtime if runtime is not None else AsyncioRuntime()
        self.transport = (transport if transport is not None
                          else MemoryTransport(self.runtime))
        # Long live runs must not grow memory without bound: cap the
        # trace ring buffer (the simulator's default stays unbounded).
        self.tracer = Tracer(enabled=trace, max_records=trace_limit)
        # Live clusters observe by default: a wall-clock deployment is
        # exactly where you want /metrics, and the protocol work per
        # second is tiny next to real I/O.
        self.obs = (observability if observability is not None
                    else Observability())
        # With tracing on, mirror tracer records into the flight rings.
        if self.obs.flight_hub is not None:
            self.obs.flight_hub.attach(self.tracer)
        self._metrics_server: Optional[MetricsServer] = None
        self.directory: Set[int] = set(self.server_ids)
        self.gcs_settings = gcs_settings or live_gcs_settings()
        self.engine_config = engine_config or EngineConfig()
        self.disk_profile = disk_profile or live_disk_profile()
        self.replicas: Dict[int, Replica] = {}
        self._client_counter: Dict[int, int] = {}
        # Green actions recorded as they are applied: the action queue
        # itself truncates its green prefix at checkpoints, so reading
        # it back later only yields a window.
        self._green_log: Dict[int, List[ActionId]] = {}
        for node in self.hosted:
            self.replicas[node] = Replica(
                self.runtime, node, self.transport, self.directory,
                self.server_ids, disk_profile=self.disk_profile,
                gcs_settings=self.gcs_settings,
                engine_config=self.engine_config, tracer=self.tracer,
                obs=self.obs, shard=shard)
            log = self._green_log[node] = []
            self.replicas[node].add_green_listener(
                lambda action, _pos, _res, _log=log:
                _log.append(action.action_id))

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start_all(self) -> None:
        for replica in self.replicas.values():
            replica.start()

    def shutdown(self) -> None:
        """Tear the hosted replicas down and release transport resources
        (sockets, reader callbacks).  Volatile state is dropped exactly
        as on a crash; durable state remains readable for post-mortems."""
        for replica in self.replicas.values():
            if replica.running:
                replica.crash()
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        close = getattr(self.transport, "close", None)
        if close is not None:
            close()
        self.runtime.stop()

    # ==================================================================
    # observability export
    # ==================================================================
    async def serve_metrics(self, host: str = "127.0.0.1",
                            port: int = 0) -> MetricsServer:
        """Serve this process's registry over HTTP: ``GET /metrics``
        (Prometheus text) and ``GET /status`` (live cluster state).
        ``port=0`` binds an OS-assigned port, published on the returned
        server's ``.port``.  One endpoint per hosting process — in a
        multi-process deployment each process exposes its hosted
        replicas."""
        if self._metrics_server is None:
            self._metrics_server = MetricsServer(
                self.obs.registry, status_fn=self.status_doc,
                host=host, port=port)
            await self._metrics_server.start()
        return self._metrics_server

    def status_doc(self) -> Dict[str, Any]:
        """A JSON-able live view of the hosted replicas (the ``/status``
        endpoint body)."""
        doc: Dict[str, Any] = {"hosted": sorted(self.replicas),
                               "servers": sorted(self.server_ids),
                               "replicas": {}}
        for node, replica in sorted(self.replicas.items()):
            tracker = self.obs.tracker(node)
            entry: Dict[str, Any] = {
                "running": replica.running,
                "engine_state": str(replica.engine.state),
                "daemon_state": replica.daemon.state,
                "green_applied": len(self._green_log[node]),
                "green_count": replica.engine.queue.green_count,
                "forced_writes": replica.disk.forced_writes,
            }
            if tracker is not None:
                p50, p95, p99 = tracker.latency_percentiles(
                    "submit_to_green")
                entry["submit_to_green"] = {"p50": p50, "p95": p95,
                                            "p99": p99}
                entry["membership_changes"] = \
                    len(tracker.membership_completed)
            doc["replicas"][str(node)] = entry
        return doc

    # ==================================================================
    # faults
    # ==================================================================
    def partition(self, *groups: Sequence[int]) -> None:
        """Install a software partition on the transport."""
        self.transport.partition([list(g) for g in groups])

    def heal(self) -> None:
        self.transport.heal()

    # ==================================================================
    # clients
    # ==================================================================
    def client(self, node: int, name: Optional[str] = None) -> Client:
        """Attach a client to a hosted replica (deterministic default
        names, mirroring :class:`~repro.core.ReplicaCluster`)."""
        if name is None:
            self._client_counter[node] = \
                self._client_counter.get(node, 0) + 1
            name = f"client-{node}.{self._client_counter[node]}"
        return Client(self.replicas[node], name=name)

    def submit(self, node: int, update: Tuple,
               on_complete: Optional[Callable] = None) -> ActionId:
        return self.replicas[node].submit(update, on_complete=on_complete)

    # ==================================================================
    # waiting (wall-clock time cannot be stepped, only awaited)
    # ==================================================================
    async def run_for(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    async def wait_until(self, predicate: Callable[[], bool],
                         timeout: float, what: str = "condition",
                         poll: float = 0.01) -> None:
        """Await ``predicate()`` turning true, polling every ``poll``
        seconds; raises :class:`LiveClusterTimeout` after ``timeout``."""
        deadline = self.runtime.now + timeout
        while not predicate():
            if self.runtime.now >= deadline:
                raise LiveClusterTimeout(
                    f"timed out after {timeout}s waiting for {what}; "
                    f"states={self.states()} greens={self.green_counts()}")
            await asyncio.sleep(poll)

    async def wait_all_engine_state(self, state: EngineState,
                                    timeout: float,
                                    nodes: Optional[Sequence[int]] = None
                                    ) -> None:
        targets = list(nodes) if nodes is not None else list(self.replicas)
        await self.wait_until(
            lambda: all(self.replicas[n].engine.state == state
                        for n in targets),
            timeout, what=f"nodes {targets} reaching {state}")

    async def wait_green(self, count: int, timeout: float,
                         nodes: Optional[Sequence[int]] = None) -> None:
        """Await every target node having *applied* ``count`` green
        actions.  Waits on the green listener log, not the queue's
        ``green_count``: ordering precedes application by one CPU
        service delay, and callers want the applied state."""
        targets = list(nodes) if nodes is not None else list(self.replicas)
        await self.wait_until(
            lambda: all(len(self._green_log[n]) >= count
                        for n in targets),
            timeout, what=f"nodes {targets} applying {count} green actions")

    # ==================================================================
    # introspection & consistency
    # ==================================================================
    def states(self) -> Dict[int, str]:
        return {n: str(r.engine.state) for n, r in self.replicas.items()}

    def green_counts(self) -> Dict[int, int]:
        """Applied green actions per node (see :meth:`wait_green`)."""
        return {n: len(self._green_log[n]) for n in self.replicas}

    def green_order(self, node: int) -> List[ActionId]:
        """All green action ids applied at ``node``, in order, since the
        cluster was built (recorded via the green listener, so checkpoint
        truncation of the action queue does not window the history)."""
        return list(self._green_log[node])

    def assert_same_green_order(self) -> List[ActionId]:
        """All hosted replicas hold the identical green action order
        (Theorem 1's observable); returns that order."""
        orders = {n: self.green_order(n) for n in self.replicas}
        nodes = sorted(orders)
        reference = orders[nodes[0]]
        for node in nodes[1:]:
            if orders[node] != reference:
                raise AssertionError(
                    f"green order diverges between {nodes[0]} and {node}: "
                    f"{reference} vs {orders[node]}")
        return reference

    def assert_converged(self) -> None:
        """Green orders and database digests identical at every hosted
        replica."""
        self.assert_same_green_order()
        digests = {n: r.database.digest()
                   for n, r in self.replicas.items()}
        if len(set(digests.values())) != 1:
            raise AssertionError(f"database digests differ: {digests}")


def udp_cluster(server_ids: Sequence[int], *,
                hosted: Optional[Sequence[int]] = None,
                addresses: Optional[Dict[int, Tuple[str, int]]] = None,
                sockets: Optional[Dict[int, Any]] = None,
                **kwargs: Any) -> LiveCluster:
    """Build a :class:`LiveCluster` over real UDP sockets.

    With no ``addresses``, every node binds an OS-assigned loopback
    port (single-process use).  Multi-process deployments pass a fixed
    ``addresses`` map — and optionally pre-bound ``sockets`` for the
    hosted nodes, letting the parent process bind all ports race-free
    before forking.
    """
    from .transport import loopback_addresses
    runtime = kwargs.pop("runtime", None) or AsyncioRuntime()
    addr_map = dict(addresses) if addresses else loopback_addresses(server_ids)
    transport = AsyncioTransport(runtime, addr_map)
    for node in (hosted if hosted is not None else server_ids):
        transport.open(node, (sockets or {}).get(node))
    return LiveCluster(server_ids, hosted=hosted, runtime=runtime,
                       transport=transport, **kwargs)
