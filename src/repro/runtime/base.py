"""The Runtime and Transport protocols: the seam between the protocol
stack and whatever executes it.

The replication algorithm is runtime-agnostic: an event-driven state
machine over GCS deliveries.  Everything it needs from its host is
captured by two narrow interfaces:

* :class:`Runtime` — a clock plus a timer service.  ``post``/``post_at``
  are the fire-and-forget fast path (no handle allocated, cannot be
  cancelled); ``schedule``/``schedule_at`` return a cancellable
  :class:`Handle`; ``call_soon`` runs a callback after the current event
  and anything already queued for now.
* :class:`Transport` — point-to-point and multicast datagram send
  between integer node ids, with loss, latency, and partitions left
  entirely to the implementation.

Two production implementations ship with the repository:

* :class:`~repro.runtime.SimRuntime` + :class:`~repro.net.Network` —
  the deterministic discrete-event pair every test and paper figure
  runs on (virtual time, seeded loss/latency, bit-identical replays);
* :class:`~repro.runtime.AsyncioRuntime` +
  :class:`~repro.runtime.AsyncioTransport` — wall-clock time on a real
  asyncio event loop with UDP datagrams, for live deployments
  (``examples/live_cluster.py``).

To add a third backend (e.g. trio, or a TCP mesh), implement these two
protocols and hand the pair to :class:`~repro.core.Replica`; no layer
above this module needs to change.  See ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Iterable, Protocol,
                    runtime_checkable)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.message import Datagram

Callback = Callable[..., None]


@runtime_checkable
class Handle(Protocol):
    """A cancellable reference to a scheduled callback."""

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        ...

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        ...

    @property
    def active(self) -> bool:
        """True while the callback has neither fired nor been cancelled."""
        ...


@runtime_checkable
class Runtime(Protocol):
    """Clock + timer service: the only execution substrate the protocol
    stack sees.

    ``now`` is seconds as a float — virtual seconds on the simulator,
    wall-clock seconds since runtime creation on asyncio.  Components
    must never compare ``now`` across two different runtime instances.
    """

    @property
    def now(self) -> float:
        """The current time in seconds."""
        ...

    def post(self, delay: float, callback: Callback, *args: Any) -> None:
        """Fire-and-forget: run ``callback(*args)`` after ``delay``
        seconds.  No handle is allocated; the call cannot be cancelled."""
        ...

    def post_at(self, time: float, callback: Callback, *args: Any) -> None:
        """Fire-and-forget at absolute time ``time``."""
        ...

    def schedule(self, delay: float, callback: Callback,
                 *args: Any) -> Handle:
        """Run ``callback(*args)`` after ``delay`` seconds; returns a
        cancellable :class:`Handle`."""
        ...

    def schedule_at(self, time: float, callback: Callback,
                    *args: Any) -> Handle:
        """Cancellable :meth:`schedule` at absolute time ``time``."""
        ...

    def call_soon(self, callback: Callback, *args: Any) -> Handle:
        """Run ``callback(*args)`` at the current time, after the
        currently-running event and anything already queued for now."""
        ...

    def stop(self) -> None:
        """Stop the runtime's dispatch loop after the current event."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Unreliable datagram fabric between integer node ids.

    Implementations deliver :class:`~repro.net.message.Datagram` objects
    to the handler attached for the destination node.  Delivery is
    best-effort: messages may be lost, delayed, or reordered — the GCS
    daemon's NACK and flush machinery recovers losses, so transports
    need no reliability of their own.
    """

    def attach(self, node: int,
               handler: Callable[["Datagram"], None]) -> None:
        """Bind ``handler`` as the receive callback for ``node``."""
        ...

    def detach(self, node: int) -> None:
        """Silence a node (crash): future deliveries to it are dropped."""
        ...

    def is_attached(self, node: int) -> bool:
        ...

    def send(self, src: int, dst: int, payload: Any,
             size: int = 200) -> None:
        """Send one unicast datagram (fire and forget)."""
        ...

    def multicast(self, src: int, dsts: Iterable[int], payload: Any,
                  size: int = 200) -> None:
        """Send ``payload`` to several destinations.  The source is not
        implicitly included; consumers handle self-delivery themselves."""
        ...
