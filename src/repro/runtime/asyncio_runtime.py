"""Wall-clock runtime on a real asyncio event loop.

Implements the :class:`~repro.runtime.base.Runtime` protocol over
``asyncio``: ``now`` is the loop's monotonic clock re-based to zero at
runtime creation, timers map onto ``loop.call_later``/``call_at``, and
``call_soon`` preserves the kernel's FIFO-at-now semantics via the
loop's ready queue.

Semantics mirror :class:`~repro.sim.kernel.Simulator` where the
protocol stack can observe the difference:

* ``post``/``post_at`` allocate no handle and cannot be cancelled;
* ``schedule`` returns a handle whose ``active`` flag drops when the
  callback fires, not merely when it is cancelled (the GCS timers poll
  ``armed``);
* negative delays raise :class:`~repro.sim.kernel.SimulationError`
  exactly like the kernel, so timer misuse fails identically under
  both runtimes.

One deliberate divergence: ``post_at``/``schedule_at`` with a time in
the past *clamp to now* instead of raising.  Virtual time never drifts,
wall-clock time always does; a live component computing an absolute
deadline from a slightly stale ``now`` must not crash the node.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from ..sim.kernel import SimulationError

Callback = Callable[..., None]


class AsyncioHandle:
    """Cancellable reference to a callback scheduled on the loop.

    Mirrors :class:`~repro.sim.kernel.EventHandle`: ``active`` is False
    once the callback fired or was cancelled.
    """

    __slots__ = ("_timer", "_cancelled", "_fired")

    def __init__(self) -> None:
        self._timer: Optional[asyncio.TimerHandle] = None
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if not self._cancelled:
            self._cancelled = True
            if self._timer is not None:
                self._timer.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def active(self) -> bool:
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending")
        return f"<AsyncioHandle {state}>"


class AsyncioRuntime:
    """The :class:`Runtime` protocol over a live asyncio event loop.

    Construct it inside a running loop (or pass one explicitly); drive
    it with ordinary ``await asyncio.sleep(...)`` — the loop itself is
    the dispatch engine, there is no ``run()`` to call.  ``stop()``
    flips :attr:`stopped` (an :class:`asyncio.Event`) so a host harness
    awaiting :meth:`wait_stopped` can shut the deployment down.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._origin = self._loop.time()
        self._events_processed = 0
        self.stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since this runtime was created (monotonic)."""
        return self._loop.time() - self._origin

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def events_processed(self) -> int:
        """Callbacks dispatched through this runtime so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def post(self, delay: float, callback: Callback, *args: Any) -> None:
        """Fire-and-forget ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._loop.call_later(delay, self._dispatch, callback, args)

    def post_at(self, time: float, callback: Callback, *args: Any) -> None:
        """Fire-and-forget at absolute runtime time ``time`` (clamped to
        now if the wall clock already passed it)."""
        when = self._origin + time
        loop_now = self._loop.time()
        self._loop.call_at(when if when > loop_now else loop_now,
                           self._dispatch, callback, args)

    def schedule(self, delay: float, callback: Callback,
                 *args: Any) -> AsyncioHandle:
        """Cancellable ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        handle = AsyncioHandle()
        handle._timer = self._loop.call_later(
            delay, self._dispatch_handle, handle, callback, args)
        return handle

    def schedule_at(self, time: float, callback: Callback,
                    *args: Any) -> AsyncioHandle:
        """Cancellable schedule at absolute runtime time ``time``."""
        handle = AsyncioHandle()
        when = self._origin + time
        loop_now = self._loop.time()
        handle._timer = self._loop.call_at(
            when if when > loop_now else loop_now,
            self._dispatch_handle, handle, callback, args)
        return handle

    def call_soon(self, callback: Callback, *args: Any) -> AsyncioHandle:
        """Run ``callback(*args)`` after everything already queued for
        now.  FIFO among ``call_soon`` callers, like the kernel."""
        handle = AsyncioHandle()
        handle._timer = self._loop.call_soon(  # type: ignore[assignment]
            self._dispatch_handle, handle, callback, args)
        return handle

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, callback: Callback, args: tuple) -> None:
        self._events_processed += 1
        callback(*args)

    def _dispatch_handle(self, handle: AsyncioHandle, callback: Callback,
                         args: tuple) -> None:
        if handle._cancelled:
            return
        handle._fired = True
        self._events_processed += 1
        callback(*args)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Signal the hosting harness to shut down (sets :attr:`stopped`)."""
        self.stopped.set()

    async def wait_stopped(self) -> None:
        await self.stopped.wait()

    async def sleep(self, duration: float) -> None:
        """Let the deployment run for ``duration`` wall-clock seconds."""
        await asyncio.sleep(duration)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<AsyncioRuntime now={self.now:.6f} "
                f"processed={self._events_processed}>")
