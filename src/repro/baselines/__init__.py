"""Comparison baselines from the paper's evaluation: COReL and 2PC,
plus the adapter exposing our engine behind the same benchmark API."""

from .base import EngineSystem, ReplicationSystemAPI
from .corel import CorelAck, CorelAction, CorelSystem
from .twopc import TwoPCSystem

__all__ = [
    "CorelAck",
    "CorelAction",
    "CorelSystem",
    "EngineSystem",
    "ReplicationSystemAPI",
    "TwoPCSystem",
]
