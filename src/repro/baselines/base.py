"""Common interface for the replication systems under benchmark.

The harness in :mod:`repro.bench` drives any object implementing
:class:`ReplicationSystemAPI`: our engine (via the adapter below),
COReL, and two-phase commit.  All three run over identical simulated
networks and disks so the comparison isolates protocol costs — message
counts and forced-write counts per action — exactly as in Section 7.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import EngineConfig, ReplicaCluster
from ..db import ActionId
from ..gcs import GcsSettings
from ..net import NetworkProfile
from ..sim import Simulator
from ..storage import DiskProfile

Completion = Callable[[], None]


class ReplicationSystemAPI:
    """What the benchmark harness needs from a replicated system."""

    name = "abstract"

    @property
    def sim(self) -> Simulator:
        raise NotImplementedError

    @property
    def nodes(self) -> List[int]:
        raise NotImplementedError

    def start(self, settle: float = 2.0) -> None:
        raise NotImplementedError

    def submit(self, node: int, update: Tuple,
               on_complete: Completion) -> None:
        """Submit one action at ``node``; ``on_complete`` fires when the
        action is globally ordered (the paper's client response point)."""
        raise NotImplementedError

    def counters(self) -> Dict[str, float]:
        """Aggregate resource counters for the metrics report."""
        raise NotImplementedError


class EngineSystem(ReplicationSystemAPI):
    """Adapter: the paper's replication engine as a benchmark system."""

    name = "engine"

    def __init__(self, n: int, seed: int = 0,
                 network_profile: Optional[NetworkProfile] = None,
                 disk_profile: Optional[DiskProfile] = None,
                 gcs_settings: Optional[GcsSettings] = None,
                 engine_config: Optional[EngineConfig] = None,
                 observability: Optional[Any] = None):
        self.cluster = ReplicaCluster(
            n=n, seed=seed, network_profile=network_profile,
            disk_profile=disk_profile, gcs_settings=gcs_settings,
            engine_config=engine_config, observability=observability)
        if engine_config is not None and not \
                engine_config.forced_client_writes:
            self.name = "engine-delayed-writes"

    @property
    def sim(self) -> Simulator:
        return self.cluster.sim

    @property
    def nodes(self) -> List[int]:
        return list(self.cluster.server_ids)

    def start(self, settle: float = 2.0) -> None:
        self.cluster.start_all(settle=settle)

    def submit(self, node: int, update: Tuple,
               on_complete: Completion) -> None:
        self.cluster.replicas[node].submit(
            update=update,
            on_complete=lambda _a, _p, _r: on_complete())

    def counters(self) -> Dict[str, float]:
        replicas = self.cluster.replicas.values()
        return {
            "datagrams": self.cluster.network.datagrams_sent,
            "bytes": self.cluster.network.bytes_sent,
            "forced_writes": sum(r.disk.forced_writes for r in replicas),
            "syncs": sum(r.disk.syncs for r in replicas),
            "greens": sum(r.engine.stats["greens"] for r in replicas),
        }


def build_node_stacks(sim: Simulator, nodes: List[int], network,
                      disk_profile: Optional[DiskProfile]):
    """Shared helper: one simulated disk per node (for the baselines)."""
    from ..storage import SimulatedDisk
    return {n: SimulatedDisk(sim, n, disk_profile) for n in nodes}
