"""COReL baseline (Keidar 94): total order + per-action end-to-end acks.

COReL exploits group communication to improve on two-phase commit: an
action is multicast in the group's total order; every replica, upon
delivery, forces the action to its log and then multicasts an
acknowledgment; the action enters the global persistent order (and can
be applied) once acknowledgments from *all* replicas arrive.  Per
action: **1 forced disk write (at every replica) and n multicast
messages** — the cost model Section 7 of the paper ascribes to it.

This implementation reuses our EVS group communication stack with
AGREED (total order, no stability wait) delivery for actions, adding
the protocol's own end-to-end acknowledgment round on top — precisely
the per-action round our engine's use of SAFE delivery amortizes into
the GCS's internal, batched stability traffic.

Scope: the benchmark scenarios are failure-free, like the paper's; on a
view change this implementation preserves the committed prefix and
continues in a majority component, but does not reproduce COReL's full
recovery protocol (out of scope for the evaluation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..gcs import (Configuration, GcsDaemon, GcsListener, GcsSettings,
                   ServiceLevel)
from ..net import Network, NetworkProfile, Topology
from ..sim import RandomStreams, ServiceQueue, Simulator, Tracer
from ..storage import DiskProfile, SimulatedDisk
from ..db.sql import execute_update
from .base import Completion, ReplicationSystemAPI


@dataclass(frozen=True)
class CorelAction:
    """An action multicast in total order."""

    txn_id: Tuple[int, int]          # (origin, local index)
    update: Tuple
    size: int = 200


@dataclass(frozen=True)
class CorelAck:
    """End-to-end acknowledgment: ``node`` has ``txn_id`` on stable
    storage."""

    txn_id: Tuple[int, int]
    node: int


class CorelReplica(GcsListener):
    """One COReL replica."""

    def __init__(self, system: "CorelSystem", node: int):
        self.system = system
        self.node = node
        self.sim = system.sim
        self.disk = SimulatedDisk(self.sim, node, system.disk_profile)
        self.cpu = ServiceQueue(self.sim)
        self.db_state: Dict = {}
        self.applied_log: List[Tuple[int, int]] = []
        self.daemon = GcsDaemon(self.sim, node, system.network,
                                system.directory, system.gcs_settings)
        self.daemon.listener = self
        self.view: Optional[Configuration] = None
        self.delivered: List[CorelAction] = []   # total order
        self.committed = 0                        # committed prefix length
        self.logged: Set[Tuple[int, int]] = set()
        self.acks: Dict[Tuple[int, int], Set[int]] = {}
        self.local_index = itertools.count(1)
        self.pending_complete: Dict[Tuple[int, int], Completion] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.daemon.start()
        self.daemon.join()

    def submit(self, update: Tuple, on_complete: Completion) -> None:
        txn_id = (self.node, next(self.local_index))
        self.pending_complete[txn_id] = on_complete
        self.daemon.multicast(CorelAction(txn_id, update),
                              ServiceLevel.AGREED, size=200)

    # ------------------------------------------------------------------
    # GCS callbacks
    # ------------------------------------------------------------------
    def on_regular_conf(self, conf: Configuration) -> None:
        self.view = conf

    def on_message(self, payload, origin: int, in_transitional: bool,
                   service: ServiceLevel) -> None:
        if isinstance(payload, CorelAction):
            self.delivered.append(payload)
            # Force the action to the log, then acknowledge end-to-end.
            self.disk.write(("corel", payload.txn_id),
                            callback=lambda p=payload: self._logged(p),
                            forced=True)
        elif isinstance(payload, CorelAck):
            self._note_ack(payload.txn_id, payload.node)

    def _logged(self, action: CorelAction) -> None:
        self.logged.add(action.txn_id)
        # The end-to-end acknowledgment is itself a group multicast
        # (n multicasts per action in total — COReL's cost model).
        self.daemon.multicast(CorelAck(action.txn_id, self.node),
                              ServiceLevel.FIFO, size=64)

    def _note_ack(self, txn_id: Tuple[int, int], node: int) -> None:
        self.acks.setdefault(txn_id, set()).add(node)
        self._advance_commit()

    def _advance_commit(self) -> None:
        """Commit the delivered prefix whose actions are fully acked."""
        members = (set(self.view.members) if self.view is not None
                   else {self.node})
        while self.committed < len(self.delivered):
            action = self.delivered[self.committed]
            if not members.issubset(self.acks.get(action.txn_id, set())):
                break
            self.committed += 1
            if action.update is not None:
                execute_update(self.db_state, action.update)
            self.applied_log.append(action.txn_id)
            ready = self.cpu.take(self.system.apply_cpu)
            completion = self.pending_complete.pop(action.txn_id, None)
            if completion is not None:
                self.sim.post_at(ready, completion)


class CorelSystem(ReplicationSystemAPI):
    """A cluster of COReL replicas (benchmark baseline)."""

    name = "corel"

    def __init__(self, n: int, seed: int = 0,
                 network_profile: Optional[NetworkProfile] = None,
                 disk_profile: Optional[DiskProfile] = None,
                 gcs_settings: Optional[GcsSettings] = None,
                 apply_cpu: float = 0.0004):
        self.apply_cpu = apply_cpu
        self._sim = Simulator()
        self.streams = RandomStreams(seed)
        self.node_ids = list(range(1, n + 1))
        self.topology = Topology(self.node_ids)
        self.network = Network(self._sim, self.topology, network_profile,
                               rng=self.streams.stream("network"))
        self.directory = set(self.node_ids)
        self.gcs_settings = gcs_settings or GcsSettings()
        self.disk_profile = disk_profile
        self.replicas = {node: CorelReplica(self, node)
                         for node in self.node_ids}

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def nodes(self) -> List[int]:
        return list(self.node_ids)

    def start(self, settle: float = 2.0) -> None:
        for replica in self.replicas.values():
            replica.start()
        if settle > 0:
            self._sim.run(until=self._sim.now + settle)

    def submit(self, node: int, update: Tuple,
               on_complete: Completion) -> None:
        self.replicas[node].submit(update, on_complete)

    def counters(self) -> Dict[str, float]:
        replicas = self.replicas.values()
        return {
            "datagrams": self.network.datagrams_sent,
            "bytes": self.network.bytes_sent,
            "forced_writes": sum(r.disk.forced_writes for r in replicas),
            "syncs": sum(r.disk.syncs for r in replicas),
            "greens": sum(r.committed for r in replicas),
        }
