"""Two-phase commit replication baseline.

The classic strict-consistency approach (Section 1.1 / Section 7): the
submitting server coordinates each action — PREPARE unicasts to every
replica, each participant acquires write locks and forces a prepare
record to its log before voting; on a unanimous yes the coordinator
forces a commit record, answers the client, and propagates COMMIT.

Per action: **2 forced disk writes in the critical path** (participant
prepare + coordinator commit — they serialize, which is why the paper
measures ~19.3 ms against ~11.4 ms for the engine and COReL) **and 2n
unicast messages** (prepares + votes; commits ride after the response).

Partition behavior is the protocol's classic weakness: a participant
prepared for an unreachable coordinator is *blocked* (locks held); the
coordinator aborts transactions it cannot prepare everywhere.  The
``blocked_transactions`` counter exposes this in the availability
ablation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..db.sql import execute_update
from ..net import Datagram, Network, NetworkProfile, Topology
from ..sim import Actor, RandomStreams, ServiceQueue, Simulator
from ..storage import DiskProfile, SimulatedDisk
from .base import Completion, ReplicationSystemAPI

TxnId = Tuple[int, int]


@dataclass(frozen=True)
class Prepare:
    txn_id: TxnId
    update: Tuple
    keys: Tuple[str, ...]


@dataclass(frozen=True)
class Vote:
    txn_id: TxnId
    node: int
    yes: bool


@dataclass(frozen=True)
class Commit:
    txn_id: TxnId


@dataclass(frozen=True)
class Abort:
    txn_id: TxnId


def update_keys(update: Tuple) -> Tuple[str, ...]:
    """Write set of an update (keys of its statements)."""
    if update and isinstance(update[0], str):
        statements = (update,)
    else:
        statements = update
    return tuple(stmt[1] for stmt in statements if len(stmt) > 1)


class _Coordinator:
    """Per-transaction coordinator bookkeeping."""

    def __init__(self, txn_id: TxnId, update: Tuple,
                 participants: Set[int], on_complete: Completion):
        self.txn_id = txn_id
        self.update = update
        self.participants = participants
        self.votes: Set[int] = set()
        self.on_complete = on_complete
        self.decided = False


class TwoPCReplica(Actor):
    """One replica running coordinator + participant roles."""

    def __init__(self, system: "TwoPCSystem", node: int):
        super().__init__(system.sim, name=f"2pc{node}")
        self.system = system
        self.node = node
        self.disk = SimulatedDisk(self.sim, node, system.disk_profile)
        self.cpu = ServiceQueue(self.sim)
        self.db_state: Dict = {}
        self.applied_log: List[TxnId] = []
        self.local_index = itertools.count(1)
        self.coordinating: Dict[TxnId, _Coordinator] = {}
        self.prepared: Dict[TxnId, Prepare] = {}
        self.locks: Dict[str, TxnId] = {}
        self.lock_queue: Dict[str, List[Tuple[TxnId, Prepare]]] = {}
        self.blocked_transactions = 0
        self.aborted = 0

    def start(self) -> None:
        self.system.network.attach(self.node, self._on_datagram)

    # ------------------------------------------------------------------
    # coordinator role
    # ------------------------------------------------------------------
    def submit(self, update: Tuple, on_complete: Completion) -> None:
        txn_id = (self.node, next(self.local_index))
        others = {n for n in self.system.node_ids if n != self.node}
        coord = _Coordinator(txn_id, update, others, on_complete)
        self.coordinating[txn_id] = coord
        prepare = Prepare(txn_id, update, update_keys(update))
        for participant in sorted(others):
            self.system.network.send(self.node, participant, prepare, 200)
        # The coordinator is also a participant for its own action.
        self._participant_prepare(prepare, local=True)
        self.after(self.system.timeout, self._check_timeout, txn_id)

    @staticmethod
    def _priority(txn_id: TxnId):
        """Wait-die age: lower (index, node) is older and may wait."""
        return (txn_id[1], txn_id[0])

    def _on_vote(self, vote: Vote) -> None:
        coord = self.coordinating.get(vote.txn_id)
        if coord is None or coord.decided:
            return
        if not vote.yes:
            self._decide_abort(coord)
            return
        coord.votes.add(vote.node)
        if coord.votes >= coord.participants:
            self._decide_commit(coord)

    def _decide_commit(self, coord: _Coordinator) -> None:
        coord.decided = True
        # Second forced write of the critical path: the commit record.
        self.disk.write(("commit", coord.txn_id),
                        callback=lambda: self._commit_done(coord),
                        forced=True)

    def _commit_done(self, coord: _Coordinator) -> None:
        self._apply(coord.txn_id)
        self.sim.post_at(self.cpu.take(self.system.apply_cpu),
                         coord.on_complete)
        commit = Commit(coord.txn_id)
        for participant in sorted(coord.participants):
            self.system.network.send(self.node, participant, commit, 64)
        del self.coordinating[coord.txn_id]

    def _decide_abort(self, coord: _Coordinator) -> None:
        coord.decided = True
        self.aborted += 1
        abort = Abort(coord.txn_id)
        for participant in sorted(coord.participants):
            self.system.network.send(self.node, participant, abort, 64)
        self._release(coord.txn_id)
        del self.coordinating[coord.txn_id]

    def _check_timeout(self, txn_id: TxnId) -> None:
        coord = self.coordinating.get(txn_id)
        if coord is not None and not coord.decided:
            self._decide_abort(coord)

    # ------------------------------------------------------------------
    # participant role
    # ------------------------------------------------------------------
    def _participant_prepare(self, prepare: Prepare,
                             local: bool = False) -> None:
        granted = self._acquire_locks(prepare)
        if granted is None:
            # Wait-die says this transaction must not wait: vote NO so
            # its coordinator aborts it (deadlock prevention).
            self._vote_no(prepare)
            return
        if not granted:
            return  # queued; will re-enter when locks free
        self.prepared[prepare.txn_id] = prepare
        # First forced write of the critical path: the prepare record.
        self.disk.write(("prepare", prepare.txn_id),
                        callback=lambda: self._vote(prepare, local),
                        forced=True)

    def _vote(self, prepare: Prepare, local: bool) -> None:
        self._send_vote(Vote(prepare.txn_id, self.node, True))

    def _vote_no(self, prepare: Prepare) -> None:
        self._send_vote(Vote(prepare.txn_id, self.node, False))

    def _send_vote(self, vote: Vote) -> None:
        coordinator = vote.txn_id[0]
        if coordinator == self.node:
            self._on_vote(vote)
        else:
            self.system.network.send(self.node, coordinator, vote, 64)

    def _on_commit(self, commit: Commit) -> None:
        if commit.txn_id in self.prepared:
            self._apply(commit.txn_id)
            self.cpu.take(self.system.apply_cpu)
            self.disk.write(("commit", commit.txn_id), forced=False)

    def _on_abort(self, abort: Abort) -> None:
        self.prepared.pop(abort.txn_id, None)
        self._release(abort.txn_id)

    def _apply(self, txn_id: TxnId) -> None:
        prepare = self.prepared.pop(txn_id, None)
        if prepare is None:
            return
        execute_update(self.db_state, prepare.update)
        self.applied_log.append(txn_id)
        self._release(txn_id, prepare)

    # ------------------------------------------------------------------
    # lock manager
    # ------------------------------------------------------------------
    def _acquire_locks(self, prepare: Prepare) -> Optional[bool]:
        """True = granted; False = queued (waiting); None = must die
        (wait-die: only older transactions may wait for younger ones)."""
        for key in prepare.keys:
            holder = self.locks.get(key)
            if holder is not None and holder != prepare.txn_id:
                if self._priority(prepare.txn_id) > self._priority(holder):
                    return None
                self.lock_queue.setdefault(key, []).append(
                    (prepare.txn_id, prepare))
                self.blocked_transactions += 1
                return False
        for key in prepare.keys:
            self.locks[key] = prepare.txn_id
        return True

    def _release(self, txn_id: TxnId,
                 prepare: Optional[Prepare] = None) -> None:
        keys = (prepare.keys if prepare is not None
                else [k for k, holder in self.locks.items()
                      if holder == txn_id])
        retry: List[Prepare] = []
        for key in keys:
            if self.locks.get(key) == txn_id:
                del self.locks[key]
            queue = self.lock_queue.get(key)
            if queue:
                _txn, queued = queue.pop(0)
                retry.append(queued)
        # Scrub any remaining queue entries of the released transaction
        # (an aborted transaction must not be granted a lock later).
        for queue in self.lock_queue.values():
            queue[:] = [(t, p) for t, p in queue if t != txn_id]
        for queued in retry:
            self._participant_prepare(queued)

    # ------------------------------------------------------------------
    def _on_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if isinstance(payload, Prepare):
            self._participant_prepare(payload)
        elif isinstance(payload, Vote):
            self._on_vote(payload)
        elif isinstance(payload, Commit):
            self._on_commit(payload)
        elif isinstance(payload, Abort):
            self._on_abort(payload)


class TwoPCSystem(ReplicationSystemAPI):
    """A cluster of 2PC replicas (benchmark baseline)."""

    name = "2pc"

    def __init__(self, n: int, seed: int = 0,
                 network_profile: Optional[NetworkProfile] = None,
                 disk_profile: Optional[DiskProfile] = None,
                 timeout: float = 5.0, apply_cpu: float = 0.0004):
        self.apply_cpu = apply_cpu
        self._sim = Simulator()
        self.streams = RandomStreams(seed)
        self.node_ids = list(range(1, n + 1))
        self.topology = Topology(self.node_ids)
        self.network = Network(self._sim, self.topology, network_profile,
                               rng=self.streams.stream("network"))
        self.disk_profile = disk_profile
        self.timeout = timeout
        self.replicas = {node: TwoPCReplica(self, node)
                         for node in self.node_ids}

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def nodes(self) -> List[int]:
        return list(self.node_ids)

    def start(self, settle: float = 0.1) -> None:
        for replica in self.replicas.values():
            replica.start()
        if settle > 0:
            self._sim.run(until=self._sim.now + settle)

    def submit(self, node: int, update: Tuple,
               on_complete: Completion) -> None:
        self.replicas[node].submit(update, on_complete)

    def counters(self) -> Dict[str, float]:
        replicas = self.replicas.values()
        return {
            "datagrams": self.network.datagrams_sent,
            "bytes": self.network.bytes_sent,
            "forced_writes": sum(r.disk.forced_writes for r in replicas),
            "syncs": sum(r.disk.syncs for r in replicas),
            "greens": sum(len(r.applied_log) for r in replicas),
            "aborted": sum(r.aborted for r in replicas),
            "blocked": sum(r.blocked_transactions for r in replicas),
        }
