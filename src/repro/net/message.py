"""Datagram envelope used by the simulated network fabric."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_datagram_ids = itertools.count(1)


@dataclass(frozen=True)
class Datagram:
    """One unreliable datagram in flight.

    ``payload`` is an arbitrary (treated as immutable) protocol message.
    ``size`` is the wire size in bytes used by the bandwidth model; the
    paper's workload uses 200-byte actions, and protocol layers add their
    own header estimates.
    """

    src: int
    dst: int
    payload: Any
    size: int = 200
    sent_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_datagram_ids))

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (f"Datagram#{self.uid} {self.src}->{self.dst} "
                f"{type(self.payload).__name__} {self.size}B")
