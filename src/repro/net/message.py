"""Datagram envelope used by the simulated network fabric."""

from __future__ import annotations

from typing import Any, final


@final
class Datagram:
    """One unreliable datagram in flight.

    ``payload`` is an arbitrary (treated as immutable) protocol message.
    ``size`` is the wire size in bytes used by the bandwidth model; the
    paper's workload uses 200-byte actions, and protocol layers add their
    own header estimates.

    A plain ``__slots__`` class rather than a dataclass: the fabric
    constructs one per destination per send, which makes this one of the
    hottest allocations in the whole simulator.
    """

    __slots__ = ("src", "dst", "payload", "size", "sent_at")

    def __init__(self, src: int, dst: int, payload: Any, size: int = 200,
                 sent_at: float = 0.0) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.sent_at = sent_at

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (f"Datagram {self.src}->{self.dst} "
                f"{type(self.payload).__name__} {self.size}B")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Datagram(src={self.src}, dst={self.dst}, "
                f"payload={self.payload!r}, size={self.size}, "
                f"sent_at={self.sent_at})")
