"""Struct-packed binary wire codec for live transports.

``AsyncioTransport`` used to pickle every datagram separately; this
module replaces that with a compact framed format:

frame   := magic(u8) version(u8) src(i32) item
item    := tag(u8) length(u32) body
body    := struct-packed fields of the hot message types; nested
           application payloads recurse into another *item*

Hot GCS/channel message types get dedicated encoders (a DataMsg header
packs to 30 bytes — including the trace-context id — vs ~200 for its
pickle); everything else — engine
messages, snapshot chunks, arbitrary application payloads — falls back
to the :data:`TAG_PICKLE` escape hatch, so the codec never constrains
what the protocol can carry.  A :class:`Batch` encodes its entries
recursively, so one UDP datagram carries many compact payloads.

Trust model: the pickle escape hatch means frames must only be accepted
from trusted endpoints, exactly like the previous all-pickle format —
every node of a deployment is part of one trust domain (the same
assumption ``multiprocessing`` makes).  Do not expose transport ports
to untrusted networks.  Malformed or truncated frames raise
:class:`CodecError`, which receive loops turn into a counted drop —
garbage off the wire must never crash the daemon.

This is deliberately the **only** module in the repository that touches
``struct``-level framing (enforced by ``repro.analysis.seams``): one
place to audit wire compatibility, one place to bump ``VERSION``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, Dict, List, Tuple

from ..gcs.types import (AckMsg, ChanAck, ChanData, DataMsg, HeartbeatMsg,
                         NackMsg, RetransDataMsg, ServiceLevel, StampMsg,
                         TokenMsg, ViewId)
from .batching import Batch


class CodecError(ValueError):
    """A frame failed to decode (truncated, garbled, unknown tag)."""


MAGIC = 0xC3
# Version 2: DataMsg, ChanData, and retransmission items carry a
# signed 64-bit trace-context field (0 = untraced).  Version-1 frames
# are rejected with :class:`CodecError` — mixed-version deployments
# would silently strip causal identity from half the traffic.
VERSION = 2

TAG_PICKLE = 0
TAG_BATCH = 1
TAG_DATA = 2
TAG_STAMP = 3
TAG_ACK = 4
TAG_HEARTBEAT = 5
TAG_TOKEN = 6
TAG_NACK = 7
TAG_RETRANS = 8
TAG_CHANDATA = 9
TAG_CHANACK = 10

_HEADER = struct.Struct("!BBi")          # magic, version, src
_ITEM = struct.Struct("!BI")             # tag, body length
_COUNT = struct.Struct("!I")
_DATA = struct.Struct("!iiiqBiq")        # view, origin, fifo, svc, size,
                                         # trace
_STAMP_ENTRY = struct.Struct("!qiq")     # seq, origin, fifo_seq
_VIEW_COUNT = struct.Struct("!iiI")      # view + entry count
_ACK = struct.Struct("!iiiq")            # view, node, ack_seq
_HEARTBEAT = struct.Struct("!iiB")       # node, group, flags
_VIEW = struct.Struct("!ii")
_SEQ = struct.Struct("!q")
_TOKEN = struct.Struct("!iiqI")          # view, next_seq, ack count
_TOKEN_ACK = struct.Struct("!iq")        # member, ack_seq
_NACK = struct.Struct("!iiiqI")          # view, node, want, missing count
_RETRANS_ITEM = struct.Struct("!qiqBiq")  # seq, origin, fifo, svc,
                                          # size, trace
_CHANDATA = struct.Struct("!iqiq")       # src, seq, size, trace
_CHANACK = struct.Struct("!iq")          # src, ack_seq
_SIZE = struct.Struct("!i")

_SERVICE_INDEX = {level: index for index, level
                  in enumerate(ServiceLevel)}
_SERVICE_BY_INDEX = tuple(ServiceLevel)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _enc_view(view_id: ViewId) -> bytes:
    return _VIEW.pack(view_id.epoch, view_id.coordinator)


def _enc_data(msg: DataMsg) -> bytes:
    return (_DATA.pack(msg.view_id.epoch, msg.view_id.coordinator,
                       msg.origin, msg.fifo_seq,
                       _SERVICE_INDEX[msg.service], msg.size, msg.trace)
            + encode_payload(msg.payload))


def _enc_stamp(msg: StampMsg) -> bytes:
    parts = [_VIEW_COUNT.pack(msg.view_id.epoch, msg.view_id.coordinator,
                              len(msg.stamps))]
    parts.extend(_STAMP_ENTRY.pack(*stamp) for stamp in msg.stamps)
    return b"".join(parts)


def _enc_ack(msg: AckMsg) -> bytes:
    return _ACK.pack(msg.view_id.epoch, msg.view_id.coordinator,
                     msg.node, msg.ack_seq)


def _enc_heartbeat(msg: HeartbeatMsg) -> bytes:
    flags = (1 if msg.joined else 0) | (2 if msg.view_id is not None else 0)
    body = _HEARTBEAT.pack(msg.node, msg.group, flags)
    if msg.view_id is not None:
        body += _enc_view(msg.view_id)
    return body + _SEQ.pack(msg.ack_seq)


def _enc_token(msg: TokenMsg) -> bytes:
    parts = [_TOKEN.pack(msg.view_id.epoch, msg.view_id.coordinator,
                         msg.next_seq, len(msg.acks))]
    parts.extend(_TOKEN_ACK.pack(member, ack) for member, ack in msg.acks)
    return b"".join(parts)


def _enc_nack(msg: NackMsg) -> bytes:
    parts = [_NACK.pack(msg.view_id.epoch, msg.view_id.coordinator,
                        msg.node, msg.want_stamps_from,
                        len(msg.missing_data))]
    parts.extend(_SEQ.pack(seq) for seq in msg.missing_data)
    return b"".join(parts)


def _enc_retrans(msg: RetransDataMsg) -> bytes:
    parts = [_VIEW_COUNT.pack(msg.view_id.epoch, msg.view_id.coordinator,
                              len(msg.items))]
    for seq, origin, fifo_seq, payload, service, size, trace in msg.items:
        parts.append(_RETRANS_ITEM.pack(seq, origin, fifo_seq,
                                        _SERVICE_INDEX[service], size,
                                        trace))
        parts.append(encode_payload(payload))
    return b"".join(parts)


def _enc_chandata(msg: ChanData) -> bytes:
    return (_CHANDATA.pack(msg.src, msg.seq, msg.size, msg.trace)
            + encode_payload(msg.payload))


def _enc_chanack(msg: ChanAck) -> bytes:
    return _CHANACK.pack(msg.src, msg.ack_seq)


def _enc_batch(batch: Batch) -> bytes:
    parts = [_COUNT.pack(len(batch.entries))]
    for payload, size in batch.entries:
        parts.append(_SIZE.pack(size))
        parts.append(encode_payload(payload))
    return b"".join(parts)


_ENCODERS: Dict[type, Tuple[int, Callable[[Any], bytes]]] = {
    DataMsg: (TAG_DATA, _enc_data),
    StampMsg: (TAG_STAMP, _enc_stamp),
    AckMsg: (TAG_ACK, _enc_ack),
    HeartbeatMsg: (TAG_HEARTBEAT, _enc_heartbeat),
    TokenMsg: (TAG_TOKEN, _enc_token),
    NackMsg: (TAG_NACK, _enc_nack),
    RetransDataMsg: (TAG_RETRANS, _enc_retrans),
    ChanData: (TAG_CHANDATA, _enc_chandata),
    ChanAck: (TAG_CHANACK, _enc_chanack),
    Batch: (TAG_BATCH, _enc_batch),
}


def encode_payload(obj: Any) -> bytes:
    """Encode one payload as a tagged item (compact when possible,
    pickled otherwise)."""
    entry = _ENCODERS.get(obj.__class__)
    if entry is not None:
        tag, encoder = entry
        try:
            body = encoder(obj)
            return _ITEM.pack(tag, len(body)) + body
        except (struct.error, OverflowError, KeyError, TypeError,
                ValueError):
            # A field out of the packed range, an exotic subtype, or an
            # unexpected item shape: the escape hatch below carries it.
            pass
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _ITEM.pack(TAG_PICKLE, len(body)) + body


def encode_frame(src: int, payload: Any) -> bytes:
    """Encode a complete wire frame for ``payload`` sent by ``src``."""
    return _HEADER.pack(MAGIC, VERSION, src) + encode_payload(payload)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _need(buf: bytes, offset: int, count: int) -> None:
    if offset + count > len(buf):
        raise CodecError(f"truncated frame: need {count} bytes at "
                         f"offset {offset}, have {len(buf)}")


def _service(index: int) -> ServiceLevel:
    if not 0 <= index < len(_SERVICE_BY_INDEX):
        raise CodecError(f"unknown service level {index}")
    return _SERVICE_BY_INDEX[index]


def _dec_pickle(body: bytes) -> Any:
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise CodecError(f"bad pickled payload: {exc!r}") from None


def _dec_data(body: bytes) -> DataMsg:
    _need(body, 0, _DATA.size)
    epoch, coord, origin, fifo_seq, svc, size, trace = \
        _DATA.unpack_from(body, 0)
    payload, end = _decode_item(body, _DATA.size)
    if end != len(body):
        raise CodecError("trailing bytes in DataMsg body")
    return DataMsg(ViewId(epoch, coord), origin, fifo_seq, payload,
                   _service(svc), size, trace)


def _dec_stamp(body: bytes) -> StampMsg:
    _need(body, 0, _VIEW_COUNT.size)
    epoch, coord, count = _VIEW_COUNT.unpack_from(body, 0)
    _need(body, _VIEW_COUNT.size, count * _STAMP_ENTRY.size)
    stamps = tuple(
        _STAMP_ENTRY.unpack_from(body, _VIEW_COUNT.size
                                 + i * _STAMP_ENTRY.size)
        for i in range(count))
    if _VIEW_COUNT.size + count * _STAMP_ENTRY.size != len(body):
        raise CodecError("trailing bytes in StampMsg body")
    return StampMsg(ViewId(epoch, coord), stamps)


def _dec_ack(body: bytes) -> AckMsg:
    if len(body) != _ACK.size:
        raise CodecError("bad AckMsg body size")
    epoch, coord, node, ack_seq = _ACK.unpack(body)
    return AckMsg(ViewId(epoch, coord), node, ack_seq)


def _dec_heartbeat(body: bytes) -> HeartbeatMsg:
    _need(body, 0, _HEARTBEAT.size)
    node, group, flags = _HEARTBEAT.unpack_from(body, 0)
    offset = _HEARTBEAT.size
    view_id = None
    if flags & 2:
        _need(body, offset, _VIEW.size)
        view_id = ViewId(*_VIEW.unpack_from(body, offset))
        offset += _VIEW.size
    _need(body, offset, _SEQ.size)
    (ack_seq,) = _SEQ.unpack_from(body, offset)
    if offset + _SEQ.size != len(body):
        raise CodecError("trailing bytes in HeartbeatMsg body")
    return HeartbeatMsg(node, view_id, bool(flags & 1), ack_seq, group)


def _dec_token(body: bytes) -> TokenMsg:
    _need(body, 0, _TOKEN.size)
    epoch, coord, next_seq, count = _TOKEN.unpack_from(body, 0)
    _need(body, _TOKEN.size, count * _TOKEN_ACK.size)
    acks = tuple(
        _TOKEN_ACK.unpack_from(body, _TOKEN.size + i * _TOKEN_ACK.size)
        for i in range(count))
    if _TOKEN.size + count * _TOKEN_ACK.size != len(body):
        raise CodecError("trailing bytes in TokenMsg body")
    return TokenMsg(ViewId(epoch, coord), next_seq, acks)


def _dec_nack(body: bytes) -> NackMsg:
    _need(body, 0, _NACK.size)
    epoch, coord, node, want, count = _NACK.unpack_from(body, 0)
    _need(body, _NACK.size, count * _SEQ.size)
    missing = tuple(
        _SEQ.unpack_from(body, _NACK.size + i * _SEQ.size)[0]
        for i in range(count))
    if _NACK.size + count * _SEQ.size != len(body):
        raise CodecError("trailing bytes in NackMsg body")
    return NackMsg(ViewId(epoch, coord), node, missing, want)


def _dec_retrans(body: bytes) -> RetransDataMsg:
    _need(body, 0, _VIEW_COUNT.size)
    epoch, coord, count = _VIEW_COUNT.unpack_from(body, 0)
    offset = _VIEW_COUNT.size
    items: List[Tuple] = []
    for _ in range(count):
        _need(body, offset, _RETRANS_ITEM.size)
        seq, origin, fifo_seq, svc, size, trace = \
            _RETRANS_ITEM.unpack_from(body, offset)
        payload, offset = _decode_item(body, offset + _RETRANS_ITEM.size)
        items.append((seq, origin, fifo_seq, payload, _service(svc),
                      size, trace))
    if offset != len(body):
        raise CodecError("trailing bytes in RetransDataMsg body")
    return RetransDataMsg(ViewId(epoch, coord), tuple(items))


def _dec_chandata(body: bytes) -> ChanData:
    _need(body, 0, _CHANDATA.size)
    src, seq, size, trace = _CHANDATA.unpack_from(body, 0)
    payload, end = _decode_item(body, _CHANDATA.size)
    if end != len(body):
        raise CodecError("trailing bytes in ChanData body")
    return ChanData(src, seq, payload, size, trace)


def _dec_chanack(body: bytes) -> ChanAck:
    if len(body) != _CHANACK.size:
        raise CodecError("bad ChanAck body size")
    src, ack_seq = _CHANACK.unpack(body)
    return ChanAck(src, ack_seq)


def _dec_batch(body: bytes) -> Batch:
    _need(body, 0, _COUNT.size)
    (count,) = _COUNT.unpack_from(body, 0)
    offset = _COUNT.size
    entries: List[Tuple[Any, int]] = []
    for _ in range(count):
        _need(body, offset, _SIZE.size)
        (size,) = _SIZE.unpack_from(body, offset)
        payload, offset = _decode_item(body, offset + _SIZE.size)
        entries.append((payload, size))
    if offset != len(body):
        raise CodecError("trailing bytes in Batch body")
    return Batch(entries)


_DECODERS: Dict[int, Callable[[bytes], Any]] = {
    TAG_PICKLE: _dec_pickle,
    TAG_DATA: _dec_data,
    TAG_STAMP: _dec_stamp,
    TAG_ACK: _dec_ack,
    TAG_HEARTBEAT: _dec_heartbeat,
    TAG_TOKEN: _dec_token,
    TAG_NACK: _dec_nack,
    TAG_RETRANS: _dec_retrans,
    TAG_CHANDATA: _dec_chandata,
    TAG_CHANACK: _dec_chanack,
    TAG_BATCH: _dec_batch,
}


def _decode_item(buf: bytes, offset: int) -> Tuple[Any, int]:
    _need(buf, offset, _ITEM.size)
    tag, length = _ITEM.unpack_from(buf, offset)
    offset += _ITEM.size
    _need(buf, offset, length)
    body = buf[offset:offset + length]
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown payload tag {tag}")
    return decoder(body), offset + length


def decode_frame(blob: bytes) -> Tuple[int, Any]:
    """Decode one wire frame; returns ``(src, payload)``.

    Raises :class:`CodecError` on anything malformed — callers count a
    drop and carry on, mirroring UDP semantics.
    """
    _need(blob, 0, _HEADER.size)
    magic, version, src = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic byte 0x{magic:02x}")
    if version != VERSION:
        raise CodecError(f"unsupported wire version {version}")
    payload, end = _decode_item(blob, _HEADER.size)
    if end != len(blob):
        raise CodecError("trailing bytes after frame payload")
    return src, payload
