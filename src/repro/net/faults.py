"""Scripted and randomized fault injection.

``FaultScript`` schedules a sequence of topology mutations at virtual
times; ``random_fault_schedule`` draws partition/merge/crash/recover
sequences from a seeded stream for property-based tests of the
replication invariants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.base import Runtime


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``op`` applied at virtual ``time``.

    op is one of 'partition', 'merge', 'heal', 'crash', 'recover',
    'isolate'.  ``arg`` carries the operand (groups for partition, node
    for crash/recover/isolate, node groups for merge).
    """

    time: float
    op: str
    arg: object = None

    def apply(self, topology: Topology) -> None:
        if self.op == "partition":
            topology.partition(self.arg)
        elif self.op == "merge":
            topology.merge(*self.arg)
        elif self.op == "heal":
            topology.heal()
        elif self.op == "crash":
            topology.crash(self.arg)
        elif self.op == "recover":
            topology.recover(self.arg)
        elif self.op == "isolate":
            topology.isolate(self.arg)
        else:
            raise ValueError(f"unknown fault op {self.op!r}")


@dataclass
class FaultScript:
    """An ordered fault schedule that installs itself on a simulator."""

    events: List[FaultEvent] = field(default_factory=list)

    def partition(self, time: float, groups: Sequence[Sequence[int]]
                  ) -> "FaultScript":
        self.events.append(FaultEvent(time, "partition",
                                      [list(g) for g in groups]))
        return self

    def merge(self, time: float, *groups: Sequence[int]) -> "FaultScript":
        self.events.append(FaultEvent(time, "merge",
                                      [list(g) for g in groups]))
        return self

    def heal(self, time: float) -> "FaultScript":
        self.events.append(FaultEvent(time, "heal"))
        return self

    def crash(self, time: float, node: int) -> "FaultScript":
        self.events.append(FaultEvent(time, "crash", node))
        return self

    def recover(self, time: float, node: int) -> "FaultScript":
        self.events.append(FaultEvent(time, "recover", node))
        return self

    def isolate(self, time: float, node: int) -> "FaultScript":
        self.events.append(FaultEvent(time, "isolate", node))
        return self

    def install(self, sim: "Runtime", topology: Topology,
                on_event: Optional[Callable[[FaultEvent], None]] = None
                ) -> None:
        """Schedule every event on ``sim`` against ``topology``.

        Events are fire-and-forget, so they go through the no-handle
        ``post_at`` fast path rather than ``schedule_at`` (whose
        cancellation handle nobody would keep).
        """
        for event in sorted(self.events, key=lambda e: e.time):
            def fire(ev: FaultEvent = event) -> None:
                ev.apply(topology)
                if on_event is not None:
                    on_event(ev)
            sim.post_at(event.time, fire)


def random_partition(nodes: Sequence[int], rng: random.Random
                     ) -> List[List[int]]:
    """Split ``nodes`` into 1..3 random non-empty groups."""
    nodes = list(nodes)
    rng.shuffle(nodes)
    k = rng.randint(1, min(3, len(nodes)))
    cuts = sorted(rng.sample(range(1, len(nodes)), k - 1)) if k > 1 else []
    groups, prev = [], 0
    for cut in cuts + [len(nodes)]:
        groups.append(nodes[prev:cut])
        prev = cut
    return groups


def random_fault_schedule(nodes: Sequence[int], rng: random.Random,
                          horizon: float, rate: float = 1.0,
                          allow_crashes: bool = True) -> FaultScript:
    """Draw a random fault schedule over ``[0, horizon]``.

    ``rate`` is the mean number of fault events per second.  The
    schedule always ends with full recovery + heal so liveness
    properties can be checked after quiescence.
    """
    script = FaultScript()
    time = 0.0
    crashed: set = set()
    while True:
        time += rng.expovariate(rate) if rate > 0 else horizon + 1
        if time >= horizon:
            break
        ops = ["partition", "heal"]
        if allow_crashes:
            ops.append("crash")
            if crashed:
                ops.append("recover")
        op = rng.choice(ops)
        if op == "partition":
            script.partition(time, random_partition(nodes, rng))
        elif op == "heal":
            script.heal(time)
        elif op == "crash":
            alive = [n for n in nodes if n not in crashed]
            if len(alive) <= 1:
                continue
            node = rng.choice(alive)
            crashed.add(node)
            script.crash(time, node)
        elif op == "recover":
            node = rng.choice(sorted(crashed))
            crashed.discard(node)
            script.recover(time, node)
    for node in sorted(crashed):
        script.recover(horizon, node)
    script.heal(horizon)
    return script
