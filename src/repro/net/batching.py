"""Wire batching: coalesce protocol payloads into one datagram.

The engine amortizes cost per action (one forced write, a fixed message
count); the transport should too.  Without batching every protocol
payload — a DataMsg, a stamp batch, a cumulative ack — pays full
per-datagram overhead: one egress serialization in the simulated fabric,
one ``sendto`` + one kernel wakeup on the asyncio transport.  At high
send rates those per-message constants, not payload bytes, dominate.

:class:`WireBatcher` sits between a sender and its
:class:`~repro.runtime.base.Transport` and coalesces payloads headed for
the same destination set into a single :class:`Batch` payload carried by
one :class:`~repro.net.message.Datagram`:

* **idle → immediate**: when a destination set has been quiet for
  ``idle_threshold`` seconds, the first payload is sent immediately —
  batching must never add latency to sparse traffic;
* **busy → coalesce**: under load, payloads buffer until either
  ``max_batch`` of them are pending for the destination set or
  ``max_delay`` elapses (one timer armed through the Runtime seam, so
  the policy is identical — and deterministic — on the simulator).

The simulated fabric charges one egress serialization per *send*
(:meth:`repro.net.network.Network.multicast`), so a batched frame is
automatically billed once for the combined size rather than N times.
Senders must flush (``flush_all``) at membership boundaries so no
payload buffered in one view is transmitted in the next, and drop
(``drop_all``) on crash.

With ``max_batch <= 1`` the config is *disabled*: callers skip
constructing a batcher entirely and the datapath is bit-identical to the
unbatched code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..runtime.base import Handle, Runtime, Transport

#: Bucket layout for the per-frame payload-count histogram.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Batch:
    """A coalesced frame: several protocol payloads in one datagram.

    ``entries`` is a tuple of ``(payload, size)`` pairs in send order;
    ``size`` is each payload's declared wire size so receivers can
    reconstruct per-payload datagrams for dispatch.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence[Tuple[Any, int]]) -> None:
        self.entries = tuple(entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Batch) and other.entries == self.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ",".join(type(p).__name__ for p, _s in self.entries)
        return f"Batch[{len(self.entries)}]({kinds})"


@dataclass
class WireBatchConfig:
    """Knobs of the wire-batching layer.

    max_batch       payloads per frame before a forced flush;
                    ``<= 1`` disables batching entirely (bit-identical
                    to the unbatched datapath)
    max_delay       longest a payload may wait in the buffer (seconds)
    idle_threshold  a destination set quiet for this long sends its
                    next payload immediately instead of buffering
    ack_delay       reliable-channel cumulative-ack coalescing window;
                    within it acks piggyback on reverse traffic or ride
                    a timer (``ReliableChannelEndpoint``)
    frame_header    bytes charged per batched frame (codec frame header)
    entry_header    bytes charged per payload inside a frame (type tag
                    + length prefix)
    """

    max_batch: int = 1
    max_delay: float = 0.0005
    idle_threshold: float = 0.002
    ack_delay: float = 0.0005
    frame_header: int = 8
    entry_header: int = 5

    @property
    def enabled(self) -> bool:
        return self.max_batch > 1


class WireBatcher:
    """Per-node send-side coalescer over a Transport.

    One instance per node, shared by every protocol component on that
    node (GCS daemon + reliable channel endpoint), so their traffic to
    a common destination set shares frames.
    """

    def __init__(self, runtime: "Runtime", node: int,
                 transport: "Transport", config: WireBatchConfig,
                 obs: Optional["Observability"] = None) -> None:
        self.runtime = runtime
        self.node = node
        self.transport = transport
        self.config = config
        # destination tuple -> buffered (payload, size) entries
        self._pending: Dict[Tuple[int, ...], List[Tuple[Any, int]]] = {}
        self._last_activity: Dict[Tuple[int, ...], float] = {}
        self._timer: Optional["Handle"] = None
        # Native counters on the datapath; mirrored into the registry
        # at collection time (see ReliableChannelEndpoint for why).
        self.frames_sent = 0
        self.payloads_sent = 0
        self._h_batch: Optional[Any] = None
        if obs is not None and obs.enabled:
            registry = obs.registry
            registry.counter_callback(
                "repro_wire_frames_total", lambda: self.frames_sent,
                "Datagram frames put on the wire by the batcher.",
                ("server",), (node,))
            registry.counter_callback(
                "repro_wire_payloads_total", lambda: self.payloads_sent,
                "Protocol payloads carried inside batcher frames.",
                ("server",), (node,))
            self._h_batch = registry.histogram(
                "repro_wire_batch_size",
                "Protocol payloads per transmitted frame.",
                ("server",), buckets=BATCH_SIZE_BUCKETS).labels(node)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any, size: int) -> None:
        """Queue a unicast payload for ``dst``."""
        self._submit((dst,), payload, size)

    def multicast(self, dsts: Sequence[int], payload: Any,
                  size: int) -> None:
        """Queue a payload for a destination set.  Payloads coalesce
        only with others for the *same* set (same construction order),
        which is how all protocol senders build their lists."""
        if not dsts:
            return
        self._submit(tuple(dsts), payload, size)

    def _submit(self, key: Tuple[int, ...], payload: Any,
                size: int) -> None:
        config = self.config
        now = self.runtime.now
        buffer = self._pending.get(key)
        if buffer is None:
            last = self._last_activity.get(key, -1.0)
            self._last_activity[key] = now
            if last < 0.0 or now - last >= config.idle_threshold:
                # Quiet destination: ship immediately, add no latency.
                self._transmit(key, ((payload, size),))
                return
            buffer = self._pending[key] = []
        else:
            self._last_activity[key] = now
        buffer.append((payload, size))
        if len(buffer) >= config.max_batch:
            self._flush_key(key)
        elif self._timer is None or not self._timer.active:
            self._timer = self.runtime.schedule(config.max_delay,
                                                self._on_timer)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        self._timer = None
        for key in list(self._pending):
            self._flush_key(key)

    def flush_all(self) -> None:
        """Transmit everything buffered (membership boundary: nothing
        queued in the old view may linger into the next)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for key in list(self._pending):
            self._flush_key(key)

    def drop_all(self) -> None:
        """Discard everything buffered (crash: volatile state is lost,
        and a crashed node must go silent, not emit a parting frame)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._pending = {}

    def pending_payloads(self) -> int:
        """Payloads currently buffered (introspection/tests)."""
        return sum(len(b) for b in self._pending.values())

    def _flush_key(self, key: Tuple[int, ...]) -> None:
        buffer = self._pending.pop(key, None)
        if buffer:
            self._last_activity[key] = self.runtime.now
            self._transmit(key, buffer)

    def _transmit(self, key: Tuple[int, ...],
                  entries: Sequence[Tuple[Any, int]]) -> None:
        count = len(entries)
        self.frames_sent += 1
        self.payloads_sent += count
        if self._h_batch is not None:
            self._h_batch.observe(count)
        if count == 1:
            payload, size = entries[0]
        else:
            config = self.config
            payload = Batch(entries)
            size = config.frame_header + sum(
                config.entry_header + s for _p, s in entries)
        if len(key) == 1:
            self.transport.send(self.node, key[0], payload, size)
        else:
            self.transport.multicast(self.node, key, payload, size)
