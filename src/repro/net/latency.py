"""Latency, bandwidth, and loss models for the simulated fabric.

The paper's testbed is a 100 Mbit/s switched LAN of 14 machines.  The
default parameters model that: ~0.15 ms propagation + switching delay,
100 Mbit/s serialization, small deterministic-seeded jitter, no loss.
WAN-ish profiles are provided for the availability ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass
class NetworkProfile:
    """Parameters of the link model.

    propagation_delay   one-way latency excluding serialization (seconds)
    bandwidth           link rate in bytes/second (serialization delay =
                        size / bandwidth, paid once per send at the
                        sender's egress port)
    send_overhead       fixed per-send CPU/NIC cost at the sender
    recv_overhead       fixed per-receive CPU cost at the receiver
    jitter              max uniform jitter added to propagation (seconds)
    loss_rate           iid drop probability per datagram
    """

    propagation_delay: float = 0.00015
    bandwidth: float = 100e6 / 8
    send_overhead: float = 0.000020
    recv_overhead: float = 0.000030
    jitter: float = 0.00002
    loss_rate: float = 0.0

    def serialization_delay(self, size: int) -> float:
        if self.bandwidth <= 0:
            return 0.0
        return size / self.bandwidth

    def sample_jitter(self, rng: Optional[random.Random]) -> float:
        if self.jitter <= 0 or rng is None:
            return 0.0
        return rng.uniform(0.0, self.jitter)

    def drops(self, rng: Optional[random.Random]) -> bool:
        if self.loss_rate <= 0 or rng is None:
            return False
        return rng.random() < self.loss_rate


def lan_profile(**overrides: float) -> NetworkProfile:
    """The paper's testbed: 100 Mbit/s switched LAN."""
    return NetworkProfile(**overrides)


def wan_profile(**overrides: float) -> NetworkProfile:
    """A wide-area profile (used by ablations): 40 ms one-way,
    10 Mbit/s, mild loss."""
    params = dict(propagation_delay=0.040, bandwidth=10e6 / 8,
                  jitter=0.004, loss_rate=0.001)
    params.update(overrides)
    return NetworkProfile(**params)


def lossless_instant_profile() -> NetworkProfile:
    """Zero-cost network for pure-algorithm unit tests."""
    return NetworkProfile(propagation_delay=0.0, bandwidth=0.0,
                          send_overhead=0.0, recv_overhead=0.0,
                          jitter=0.0, loss_rate=0.0)
