"""The network fabric: unreliable datagram delivery with queueing.

Delivery pipeline for one datagram::

    sender egress port (FIFO, send_overhead + size/bandwidth)
      -> propagation (+ seeded jitter)
        -> receiver ingress port (FIFO, recv_overhead)
          -> handler callback

Reachability (:class:`~repro.net.topology.Topology`) is checked both at
send time and at delivery time, so a partition cuts messages already in
flight — exactly the situation Extended Virtual Synchrony exists to
handle.  A multicast pays the sender's egress serialization once and
fans out to each destination (hardware multicast on a LAN, as used by
Spread).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from ..sim import Simulator, Tracer
from .latency import NetworkProfile
from .message import Datagram
from .topology import Topology

Handler = Callable[[Datagram], None]


class _Port:
    """FIFO service queues for one node's NIC (egress and ingress)."""

    __slots__ = ("egress_free_at", "ingress_free_at")

    def __init__(self) -> None:
        self.egress_free_at = 0.0
        self.ingress_free_at = 0.0

    def reset(self) -> None:
        self.egress_free_at = 0.0
        self.ingress_free_at = 0.0


class Network:
    """Datagram fabric over a :class:`Topology`."""

    def __init__(self, sim: Simulator, topology: Topology,
                 profile: Optional[NetworkProfile] = None,
                 rng=None, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.topology = topology
        self.profile = profile or NetworkProfile()
        self.rng = rng
        self.tracer = tracer or Tracer(enabled=False)
        self._handlers: Dict[int, Handler] = {}
        self._ports: Dict[int, _Port] = {}
        # Optional adversarial hook: called per datagram at send time;
        # returns True (deliver), False (drop), or a float (extra delay
        # in seconds).  Used by targeted fault-injection tests.
        self.interceptor: Optional[Callable[[Datagram], object]] = None
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, node: int, handler: Handler) -> None:
        """Bind ``handler`` as the receive callback for ``node``."""
        self._handlers[node] = handler
        self._ports.setdefault(node, _Port())

    def detach(self, node: int) -> None:
        """Silence a node (crash): future deliveries to it are dropped."""
        self._handlers.pop(node, None)
        port = self._ports.get(node)
        if port is not None:
            port.reset()

    def is_attached(self, node: int) -> bool:
        return node in self._handlers

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any,
             size: int = 200) -> None:
        """Send one unicast datagram (fire and forget)."""
        self._send_batch(src, (dst,), payload, size)

    def multicast(self, src: int, dsts: Iterable[int], payload: Any,
                  size: int = 200) -> None:
        """Send to several destinations with a single egress serialization.

        The source is *not* implicitly included; GCS layers that need
        self-delivery handle it themselves (loopback is free and
        immediate on real stacks; here it costs one ingress service).
        """
        self._send_batch(src, tuple(dsts), payload, size)

    def _send_batch(self, src: int, dsts: Iterable[int], payload: Any,
                    size: int) -> None:
        if not self.topology.is_alive(src) or src not in self._handlers:
            return
        port = self._ports.setdefault(src, _Port())
        start = max(self.sim.now, port.egress_free_at)
        done = (start + self.profile.send_overhead
                + self.profile.serialization_delay(size))
        port.egress_free_at = done
        self.datagrams_sent += 1
        self.bytes_sent += size
        for dst in dsts:
            datagram = Datagram(src=src, dst=dst, payload=payload,
                                size=size, sent_at=self.sim.now)
            if dst != src and not self.topology.reachable(src, dst):
                self._drop(datagram, "unreachable_at_send")
                continue
            if self.profile.drops(self.rng):
                self._drop(datagram, "loss")
                continue
            extra_delay = 0.0
            if self.interceptor is not None:
                verdict = self.interceptor(datagram)
                if verdict is False:
                    self._drop(datagram, "intercepted")
                    continue
                if isinstance(verdict, (int, float)) \
                        and not isinstance(verdict, bool):
                    extra_delay = float(verdict)
            arrival = (done + self.profile.propagation_delay
                       + self.profile.sample_jitter(self.rng)
                       + extra_delay)
            if dst == src:
                arrival = done + extra_delay
            self.sim.schedule_at(arrival, self._arrive, datagram)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _arrive(self, datagram: Datagram) -> None:
        src, dst = datagram.src, datagram.dst
        if dst != src and not self.topology.reachable(src, dst):
            self._drop(datagram, "unreachable_at_delivery")
            return
        if not self.topology.is_alive(dst):
            self._drop(datagram, "dst_crashed")
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self._drop(datagram, "dst_detached")
            return
        port = self._ports.setdefault(dst, _Port())
        ready = (max(self.sim.now, port.ingress_free_at)
                 + self.profile.recv_overhead)
        port.ingress_free_at = ready
        self.sim.schedule_at(ready, self._deliver, datagram)

    def _deliver(self, datagram: Datagram) -> None:
        # Re-check at the actual delivery instant: the destination may
        # have crashed or been cut off while queued at the ingress port.
        if not self.topology.is_alive(datagram.dst):
            self._drop(datagram, "dst_crashed")
            return
        if (datagram.dst != datagram.src and
                not self.topology.reachable(datagram.src, datagram.dst)):
            self._drop(datagram, "unreachable_at_delivery")
            return
        handler = self._handlers.get(datagram.dst)
        if handler is None:
            self._drop(datagram, "dst_detached")
            return
        self.datagrams_delivered += 1
        self.tracer.emit(self.sim.now, datagram.dst, "net.deliver",
                         src=datagram.src, size=datagram.size)
        handler(datagram)

    def _drop(self, datagram: Datagram, reason: str) -> None:
        self.datagrams_dropped += 1
        self.tracer.emit(self.sim.now, datagram.dst, "net.drop",
                         src=datagram.src, reason=reason)
