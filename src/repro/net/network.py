"""The network fabric: unreliable datagram delivery with queueing.

Delivery pipeline for one datagram::

    sender egress port (FIFO, send_overhead + size/bandwidth)
      -> propagation (+ seeded jitter)
        -> receiver ingress port (FIFO, recv_overhead)
          -> handler callback

Reachability (:class:`~repro.net.topology.Topology`) is checked both at
send time and at delivery time, so a partition cuts messages already in
flight — exactly the situation Extended Virtual Synchrony exists to
handle.  A multicast pays the sender's egress serialization once and
fans out to each destination (hardware multicast on a LAN, as used by
Spread).

This module is part of the accelerated set (:mod:`repro.accel`); the
same file is the pure-python reference and the mypyc compilation unit.
Everything read per datagram — the kernel heap, its sequence counter,
the bound arrival callbacks, the profile-derived constants — is hoisted
into attributes at construction; the per-destination loop touches only
locals and dict lookups.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, Callable, Dict, Iterable, List, Optional, final

from ..sim.kernel import Simulator
from ..sim.trace import Tracer
from .latency import NetworkProfile
from .message import Datagram
from .topology import Topology

Handler = Callable[[Datagram], None]


def _zero() -> float:
    """Stand-in RNG draw for the rng-less fabric (never actually drawn:
    jitter and loss are forced to 0.0 when no rng is configured, and the
    draws are guarded by ``> 0.0`` tests — this keeps the draw callable
    non-optional for the type checker and the compiled build)."""
    return 0.0


@final
class _Port:
    """FIFO service queues for one node's NIC (egress and ingress)."""

    __slots__ = ("egress_free_at", "ingress_free_at")

    def __init__(self) -> None:
        self.egress_free_at = 0.0
        self.ingress_free_at = 0.0

    def reset(self) -> None:
        self.egress_free_at = 0.0
        self.ingress_free_at = 0.0


@final
class Network:
    """Datagram fabric over a :class:`Topology`.

    This is the simulated implementation of the
    :class:`~repro.runtime.base.Transport` protocol — the live
    counterparts are :class:`~repro.runtime.MemoryTransport` and
    :class:`~repro.runtime.AsyncioTransport`.  Unlike the protocol
    layers above it, ``Network`` deliberately takes the concrete
    :class:`~repro.sim.kernel.Simulator` rather than the abstract
    Runtime: its delivery path pushes raw event tuples straight onto
    the kernel heap (see ``_send_batch``), which is the hottest loop in
    every throughput figure and must not pay a protocol indirection.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 profile: Optional[NetworkProfile] = None,
                 rng: Optional[random.Random] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.profile = profile if profile is not None else NetworkProfile()
        # Hoisted once: read per datagram on the delivery path.
        self._recv_overhead = self.profile.recv_overhead
        self._send_overhead = self.profile.send_overhead
        self._propagation = self.profile.propagation_delay
        bandwidth = self.profile.bandwidth
        self._inv_bandwidth = 1.0 / bandwidth if bandwidth > 0 else 0.0
        self._jitter = self.profile.jitter
        self._loss_rate = self.profile.loss_rate
        self.rng = rng
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._handlers: Dict[int, Handler] = {}
        self._ports: Dict[int, _Port] = {}
        # Kernel internals, aliased for the raw event pushes below.  The
        # heap alias stays valid across compaction (the kernel compacts
        # in place); the bound ``__next__``/callback objects are
        # allocated once here instead of once per datagram.
        self._kheap: List[tuple] = sim._heap
        self._kseq_next: Callable[[], int] = sim._seq.__next__
        self._arrive_cb: Handler = self._arrive
        self._deliver_cb: Handler = self._deliver
        # Optional adversarial hook: called per datagram at send time;
        # returns True (deliver), False (drop), or a float (extra delay
        # in seconds).  Used by targeted fault-injection tests.
        self.interceptor: Optional[Callable[[Datagram], object]] = None
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, node: int, handler: Handler) -> None:
        """Bind ``handler`` as the receive callback for ``node``."""
        self._handlers[node] = handler
        self._ports.setdefault(node, _Port())

    def detach(self, node: int) -> None:
        """Silence a node (crash): future deliveries to it are dropped."""
        self._handlers.pop(node, None)
        port = self._ports.get(node)
        if port is not None:
            port.reset()

    def is_attached(self, node: int) -> bool:
        return node in self._handlers

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any,
             size: int = 200) -> None:
        """Send one unicast datagram (fire and forget)."""
        self._send_batch(src, (dst,), payload, size)

    def multicast(self, src: int, dsts: Iterable[int], payload: Any,
                  size: int = 200) -> None:
        """Send to several destinations with a single egress serialization.

        The source is *not* implicitly included; GCS layers that need
        self-delivery handle it themselves (loopback is free and
        immediate on real stacks; here it costs one ingress service).
        ``dsts`` is consumed exactly once, so tuples and lists pass
        through without a copy.
        """
        if not isinstance(dsts, (tuple, list)):
            dsts = tuple(dsts)
        self._send_batch(src, dsts, payload, size)

    def _send_batch(self, src: int, dsts: Iterable[int], payload: Any,
                    size: int) -> None:
        topology = self.topology
        if not topology.is_alive(src) or src not in self._handlers:
            return
        port = self._ports[src]  # attach() guarantees the port exists
        now = self.sim.now
        free = port.egress_free_at
        done = ((now if now > free else free) + self._send_overhead
                + size * self._inv_bandwidth)
        port.egress_free_at = done
        self.datagrams_sent += 1
        self.bytes_sent += size
        rng = self.rng
        jitter = self._jitter if rng is not None else 0.0
        loss_rate = self._loss_rate if rng is not None else 0.0
        rng_random: Callable[[], float] = \
            rng.random if rng is not None else _zero
        interceptor = self.interceptor
        tracer = self.tracer
        base_arrival = done + self._propagation
        # Hottest push in the system: enqueue the kernel's raw
        # fire-and-forget entry directly (same shape post_at builds)
        # rather than paying a Python call per destination.  Arrival
        # times are ``>= now`` by construction.
        heap = self._kheap
        seq_next = self._kseq_next
        arrive = self._arrive_cb
        # Healthy fabric (every node up, one component): ``src`` was
        # vouched for above, so per-destination reachability collapses
        # to membership in the alive dict — no method call per dst.
        alive = topology._alive if topology._all_connected else None
        for dst in dsts:
            # Destinations already dead or cut off at send time never see
            # the datagram, so don't even construct it (one allocation per
            # destination on the hottest path in the fabric).
            if dst != src:
                if alive is not None:
                    if dst not in alive:
                        self.datagrams_dropped += 1
                        if tracer.enabled:
                            tracer.emit(now, dst, "net.drop", src=src,
                                        reason="unreachable_at_send")
                        continue
                elif not topology.reachable(src, dst):
                    self.datagrams_dropped += 1
                    if tracer.enabled:
                        tracer.emit(now, dst, "net.drop", src=src,
                                    reason="unreachable_at_send")
                    continue
            # Inlined profile.drops(): no draw at zero loss, identical
            # draw otherwise, one Python call fewer per destination.
            if loss_rate > 0.0 and rng_random() < loss_rate:
                self.datagrams_dropped += 1
                if tracer.enabled:
                    tracer.emit(now, dst, "net.drop", src=src,
                                reason="loss")
                continue
            datagram = Datagram(src, dst, payload, size, now)
            extra_delay = 0.0
            if interceptor is not None:
                verdict = interceptor(datagram)
                if verdict is False:
                    self._drop(datagram, "intercepted")
                    continue
                if isinstance(verdict, (int, float)) \
                        and not isinstance(verdict, bool):
                    extra_delay = float(verdict)
            # The jitter draw happens per surviving destination — also
            # for self-delivery, whose arrival ignores it — to keep the
            # seeded random stream stable across code revisions.
            # ``jitter * rng_random()`` is bit-identical to
            # ``rng.uniform(0.0, jitter)`` with one Python call fewer.
            jit = jitter * rng_random() if jitter > 0.0 else 0.0
            if dst == src:
                heappush(heap, (done + extra_delay, seq_next(), arrive,
                                (datagram,)))
            else:
                heappush(heap, (base_arrival + jit + extra_delay,
                                seq_next(), arrive, (datagram,)))

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _arrive(self, datagram: Datagram) -> None:
        src = datagram.src
        dst = datagram.dst
        topology = self.topology
        # Healthy fabric (every node up, one component): the send-time
        # check already vouched for src and dst, so skip the per-hop
        # liveness/partition queries entirely.
        if not topology._all_connected:
            if dst != src and not topology.reachable(src, dst):
                self._drop(datagram, "unreachable_at_delivery")
                return
            if not topology.is_alive(dst):
                self._drop(datagram, "dst_crashed")
                return
        if dst not in self._handlers:
            self._drop(datagram, "dst_detached")
            return
        port = self._ports[dst]  # handler present => port exists
        now = self.sim.now
        free = port.ingress_free_at
        ready = (now if now > free else free) + self._recv_overhead
        port.ingress_free_at = ready
        # Direct raw push (see _send_batch): ``ready >= now`` holds.
        heappush(self._kheap, (ready, self._kseq_next(), self._deliver_cb,
                               (datagram,)))

    def _deliver(self, datagram: Datagram) -> None:
        # Re-check at the actual delivery instant: the destination may
        # have crashed or been cut off while queued at the ingress port.
        src = datagram.src
        dst = datagram.dst
        topology = self.topology
        if not topology._all_connected:
            if not topology.is_alive(dst):
                self._drop(datagram, "dst_crashed")
                return
            if dst != src and not topology.reachable(src, dst):
                self._drop(datagram, "unreachable_at_delivery")
                return
        handler = self._handlers.get(dst)
        if handler is None:
            self._drop(datagram, "dst_detached")
            return
        self.datagrams_delivered += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(self.sim.now, dst, "net.deliver",
                        src=src, size=datagram.size)
        handler(datagram)

    def _drop(self, datagram: Datagram, reason: str) -> None:
        self.datagrams_dropped += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, datagram.dst, "net.drop",
                             src=datagram.src, reason=reason)
