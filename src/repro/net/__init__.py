"""Partitionable network substrate.

Unreliable datagram fabric with latency/bandwidth/loss models, a
partition/crash topology, and scripted or randomized fault injection.
"""

from .faults import FaultEvent, FaultScript, random_fault_schedule
from .latency import (NetworkProfile, lan_profile,
                      lossless_instant_profile, wan_profile)
from .message import Datagram
from .network import Network
from .topology import Topology, TopologyError

__all__ = [
    "Datagram",
    "FaultEvent",
    "FaultScript",
    "Network",
    "NetworkProfile",
    "Topology",
    "TopologyError",
    "lan_profile",
    "lossless_instant_profile",
    "random_fault_schedule",
    "wan_profile",
]
