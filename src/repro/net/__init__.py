"""Partitionable network substrate.

Unreliable datagram fabric with latency/bandwidth/loss models, a
partition/crash topology, and scripted or randomized fault injection.
"""

from .batching import Batch, WireBatchConfig, WireBatcher
from .faults import FaultEvent, FaultScript, random_fault_schedule
from .latency import (NetworkProfile, lan_profile,
                      lossless_instant_profile, wan_profile)
from .message import Datagram
from .network import Network
from .topology import Topology, TopologyError

# NOTE: repro.net.codec is intentionally *not* imported here — it
# depends on repro.gcs (message types), which depends back on this
# package; the live transports import it directly.

__all__ = [
    "Batch",
    "Datagram",
    "FaultEvent",
    "FaultScript",
    "Network",
    "NetworkProfile",
    "Topology",
    "TopologyError",
    "WireBatchConfig",
    "WireBatcher",
    "lan_profile",
    "lossless_instant_profile",
    "random_fault_schedule",
    "wan_profile",
]
