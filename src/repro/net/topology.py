"""Connectivity model: components, crashes, partitions, merges.

The topology is the ground truth of who can talk to whom.  Nodes live in
named *components*; two nodes can exchange messages iff both are up and
they share a component.  Fault injection mutates the topology; listeners
(the network fabric, optional fast failure-detector hints) are notified
on every change.
"""

from __future__ import annotations

from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, final)


class TopologyError(Exception):
    """Raised for malformed topology mutations."""


@final
class Topology:
    """Partitionable set of nodes.

    All nodes start alive in a single component.  ``partition`` splits
    the node set into disjoint groups; ``merge``/``heal`` joins groups.
    ``crash``/``recover`` toggle per-node liveness independently of the
    component structure (a crashed node keeps its component slot).
    """

    def __init__(self, nodes: Iterable[int]) -> None:
        self.nodes: List[int] = sorted(set(nodes))
        if not self.nodes:
            raise TopologyError("topology needs at least one node")
        self._component_of: Dict[int, int] = {n: 0 for n in self.nodes}
        self._alive: Dict[int, bool] = {n: True for n in self.nodes}
        self._next_component = 1
        self._listeners: List[Callable[[], None]] = []
        # Fast path: in the (overwhelmingly common) healthy state —
        # every node alive, one component — reachability is just "both
        # nodes exist".  Recomputed on every mutation, checked per
        # datagram.
        self._all_connected = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_alive(self, node: int) -> bool:
        return self._alive.get(node, False)

    def reachable(self, a: int, b: int) -> bool:
        """True iff a and b are both alive and in the same component."""
        alive = self._alive
        if self._all_connected:
            return a in alive and b in alive
        if a == b:
            return alive.get(a, False)
        return (alive.get(a, False) and alive.get(b, False)
                and self._component_of[a] == self._component_of[b])

    def component_members(self, node: int) -> FrozenSet[int]:
        """Alive nodes sharing ``node``'s component (including itself if
        alive)."""
        comp = self._component_of[node]
        return frozenset(n for n in self.nodes
                         if self._component_of[n] == comp and self._alive[n])

    def components(self) -> List[FrozenSet[int]]:
        """All components as frozensets of alive members (non-empty only)."""
        by_comp: Dict[int, Set[int]] = {}
        for n in self.nodes:
            if self._alive[n]:
                by_comp.setdefault(self._component_of[n], set()).add(n)
        return [frozenset(v) for _, v in sorted(by_comp.items())]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_node(self, node: int,
                 component_like: Optional[int] = None) -> None:
        """Add a brand-new node (dynamic replica instantiation).

        The node joins the component of ``component_like`` if given, else
        a fresh singleton component.
        """
        if node in self._component_of:
            raise TopologyError(f"node {node} already exists")
        self.nodes.append(node)
        self.nodes.sort()
        if component_like is not None:
            if component_like not in self._component_of:
                raise TopologyError(f"unknown node {component_like}")
            self._component_of[node] = self._component_of[component_like]
        else:
            self._component_of[node] = self._next_component
            self._next_component += 1
        self._alive[node] = True
        self._notify()

    def partition(self, groups: Sequence[Iterable[int]]) -> None:
        """Split the whole node set into the given disjoint groups.

        Every node must appear in exactly one group.  Liveness is
        unaffected.
        """
        seen: Set[int] = set()
        for group in groups:
            for n in group:
                if n not in self._component_of:
                    raise TopologyError(f"unknown node {n}")
                if n in seen:
                    raise TopologyError(f"node {n} in two groups")
                seen.add(n)
        if seen != set(self.nodes):
            missing = set(self.nodes) - seen
            raise TopologyError(f"nodes not assigned to any group: "
                                f"{sorted(missing)}")
        for group in groups:
            comp = self._next_component
            self._next_component += 1
            for n in group:
                self._component_of[n] = comp
        self._notify()

    def merge(self, *node_groups: Iterable[int]) -> None:
        """Join the components containing the given nodes into one."""
        nodes = [n for group in node_groups for n in group]
        if not nodes:
            return
        comps = {self._component_of[n] for n in nodes}
        target = min(comps)
        for n in self.nodes:
            if self._component_of[n] in comps:
                self._component_of[n] = target
        self._notify()

    def heal(self) -> None:
        """Put every node into a single component."""
        comp = self._next_component
        self._next_component += 1
        for n in self.nodes:
            self._component_of[n] = comp
        self._notify()

    def crash(self, node: int) -> None:
        if node not in self._alive:
            raise TopologyError(f"unknown node {node}")
        if self._alive[node]:
            self._alive[node] = False
            self._notify()

    def recover(self, node: int) -> None:
        if node not in self._alive:
            raise TopologyError(f"unknown node {node}")
        if not self._alive[node]:
            self._alive[node] = True
            self._notify()

    def isolate(self, node: int) -> None:
        """Put ``node`` alone in its own component (a 1-vs-rest split)."""
        comp = self._next_component
        self._next_component += 1
        self._component_of[node] = comp
        self._notify()

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a callback invoked after every topology change."""
        self._listeners.append(callback)

    def _notify(self) -> None:
        alive = self._alive
        self._all_connected = (
            all(alive.values())
            and len(set(self._component_of.values())) <= 1)
        for callback in list(self._listeners):
            callback()
