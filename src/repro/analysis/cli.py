"""Command-line driver for the static-analysis suite.

``repro-analyze [paths...]`` runs all four analyzers over the given
files/directories (default: the installed ``repro`` package source) and
prints findings as ``path:line: [rule] message``.

Exit status: 0 unless ``--strict`` is given and at least one
unsuppressed finding exists.  ``--json FILE`` additionally writes the
full machine-readable report (CI publishes it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .common import Finding, collect_py_files
from .compile_discipline import CompileDisciplineChecker
from .determinism import DeterminismLinter
from .model_sync import ModelSyncChecker, model_modules
from .seams import SeamEnforcer
from .state_checker import StateMachineChecker, engine_sources


def run_analyzers(paths: Iterable[Path],
                  table_path: Optional[Path] = None) -> List[Finding]:
    """Run the whole suite over ``paths`` and return every finding,
    suppressed ones included (callers filter on ``suppressed``)."""
    roots = [Path(p) for p in paths]
    files = collect_py_files(roots)
    findings: List[Finding] = []
    engine_files = [f for root in roots for f in engine_sources(root)]
    if engine_files:
        if table_path is None:
            for f in files:
                if f.name == "state_machine.py" and f.parent.name == "core":
                    table_path = f
                    break
        checker = StateMachineChecker()
        findings.extend(checker.check_paths(engine_files,
                                            table_path=table_path))
    model_files = [f for root in roots for f in model_modules(root)]
    if model_files:
        findings.extend(ModelSyncChecker().check_paths(model_files))
    findings.extend(DeterminismLinter().check_paths(files))
    findings.extend(SeamEnforcer().check_paths(files))
    findings.extend(CompileDisciplineChecker().check_paths(files))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _default_paths() -> List[Path]:
    return [Path(__file__).resolve().parent.parent]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=("Static analysis for the replication protocol: "
                     "state-machine cross-check, determinism lint, "
                     "runtime-seam enforcement."))
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any unsuppressed finding exists")
    parser.add_argument("--json", type=Path, metavar="FILE",
                        help="write the full JSON report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "'# repro: allow[...]' comments")
    args = parser.parse_args(argv)

    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro-analyze: no such path: {p}", file=sys.stderr)
        return 2

    findings = run_analyzers(paths)
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    for finding in active:
        print(finding.format())
    if args.show_suppressed:
        for finding in suppressed:
            print(f"{finding.format()} (suppressed)")

    if args.json is not None:
        report: Dict[str, object] = {
            "paths": [str(p) for p in paths],
            "counts": {
                "active": len(active),
                "suppressed": len(suppressed),
            },
            "findings": [f.as_dict() for f in findings],
        }
        payload = json.dumps(report, indent=2, sort_keys=True)
        if str(args.json) == "-":
            print(payload)
        else:
            args.json.write_text(payload + "\n", encoding="utf-8")

    summary = (f"{len(active)} finding(s), "
               f"{len(suppressed)} suppressed")
    print(summary, file=sys.stderr)
    if args.strict and active:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
