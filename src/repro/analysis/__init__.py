"""Static analysis of the protocol implementation.

Three AST-based analyzers (stdlib-only) verify structural properties
that the paper's correctness argument relies on and that runtime
checks alone catch late or not at all:

* :mod:`~repro.analysis.state_checker` — extracts every
  ``_set_state`` edge and state guard from the engine source and diffs
  it against the declared Figure-4 table in
  :mod:`repro.core.state_machine`;
* :mod:`~repro.analysis.determinism` — flags nondeterminism hazards in
  protocol modules: wall-clock reads, the global ``random`` module,
  iteration over sets feeding ordering or emission, ``id()``-based
  keys, float equality;
* :mod:`~repro.analysis.seams` — enforces that protocol code reaches
  clocks, timers, and sockets only through the ``Runtime`` /
  ``Transport`` protocols of :mod:`repro.runtime.base`;
* :mod:`~repro.analysis.compile_discipline` — keeps the
  mypyc-accelerated module set (:data:`repro.accel.modules.ACCEL_MODULES`)
  fully annotated, free of dynamic-attribute constructs, and decoupled
  from heavyweight protocol modules, so the same files compile natively
  and interpret identically;
* :mod:`~repro.analysis.model_sync` — asserts the model checker's
  abstract model (:mod:`repro.check.model`) *derives* its edges from
  ``EDGES_BY_INPUT`` rather than carrying a hand-written copy that
  could drift from the executable table.

Run the whole suite with ``repro-analyze`` (see
:mod:`repro.tools.analyze`) or programmatically via
:func:`run_analyzers`.  Intentional exceptions carry inline
suppressions: ``# repro: allow[rule-name] -- reason``.
"""

from .common import (Finding, Suppressions, collect_py_files,
                     iter_findings, module_parts, parse_file)
from .compile_discipline import CompileDisciplineChecker
from .determinism import DeterminismLinter, PROTOCOL_PACKAGES
from .model_sync import ModelSyncChecker, model_modules
from .seams import SEAM_EXEMPT_PACKAGES, SeamEnforcer
from .state_checker import (StateMachineChecker, default_state_table,
                            engine_sources)
from .cli import main, run_analyzers

__all__ = [
    "CompileDisciplineChecker",
    "DeterminismLinter",
    "Finding",
    "ModelSyncChecker",
    "PROTOCOL_PACKAGES",
    "SEAM_EXEMPT_PACKAGES",
    "SeamEnforcer",
    "StateMachineChecker",
    "Suppressions",
    "collect_py_files",
    "default_state_table",
    "engine_sources",
    "iter_findings",
    "main",
    "model_modules",
    "module_parts",
    "parse_file",
    "run_analyzers",
]
