"""Compile-discipline enforcer for the accelerated module set.

The modules in :data:`repro.accel.modules.ACCEL_MODULES` are compiled
with mypyc when the ``accel`` extra is built (``REPRO_ACCEL=1``, see
``setup.py``); the same files remain the pure-python reference that
the ``compiled_core`` differential gate runs against.  For that dual
life the files must stay inside the subset of Python that compiles
*and* behaves identically interpreted.  This analyzer pins the subset:

* **compile-annotations** — every function in an accel module is fully
  annotated (parameters, ``*args``/``**kwargs``, return type).  mypyc
  falls back to boxed dynamic operations on anything untyped, which
  silently erases the speedup; a lambda (unannotatable by
  construction) is flagged for the same reason.
* **compile-dynamic** — no ``getattr``/``setattr``/``delattr``,
  ``vars``/``globals``/``locals``, ``eval``/``exec``/``__import__``,
  or ``__dict__`` access.  Native classes have no instance dict, so
  these constructs either fail at runtime in the compiled build or
  force mypyc to deoptimise the class; they are also the hooks
  monkeypatching relies on, and a module that can be monkeypatched
  cannot be trusted to behave identically compiled and interpreted.
* **compile-imports** — accel modules import only other accel modules,
  lightweight data-type modules, and the standard library.  Importing
  a heavyweight protocol module (the engine, the GCS daemon, a bare
  ``repro.*`` package ``__init__``) would drag uncompiled code into
  the compiled core's import graph and re-couple the leaf modules to
  the layers the differential gate needs to vary independently.
  Imports under ``if TYPE_CHECKING:`` are exempt (they never execute).

Scope is exactly the files whose dotted module path appears in
``ACCEL_MODULES`` — the one list ``setup.py`` compiles — so adding a
module to the compiled set automatically puts it under this analyzer.
Unlike the other analyzers this one imports :mod:`repro.accel.modules`
for that list; the module is data-only by contract (see its
docstring), so the no-imports-of-analysed-code rule is preserved in
spirit.  Deliberate exceptions carry
``# repro: allow[compile-dynamic] -- reason``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..accel.modules import ACCEL_MODULES
from .common import (Finding, SourceFile, collect_py_files, iter_findings,
                     module_parts, parse_file)

ANALYZER = "compile-discipline"
RULE_ANNOTATIONS = "compile-annotations"
RULE_DYNAMIC = "compile-dynamic"
RULE_IMPORTS = "compile-imports"

#: Builtins that defeat static compilation (and enable monkeypatching).
_DYNAMIC_CALLS = frozenset({
    "getattr", "setattr", "delattr", "vars", "globals", "locals",
    "eval", "exec", "__import__",
})

#: Heavyweight protocol modules an accel leaf must never import.
_HEAVY_MODULES = frozenset({
    ("repro", "core", "engine"),
    ("repro", "core", "replica"),
    ("repro", "core", "cluster"),
    ("repro", "core", "reconfig"),
    ("repro", "core", "recovery"),
    ("repro", "core", "client"),
    ("repro", "gcs", "daemon"),
    ("repro", "gcs", "channel"),
    ("repro", "gcs", "group"),
    ("repro", "sim", "process"),
})

#: Whole repro subpackages off-limits to the compiled core.
_HEAVY_PACKAGES = frozenset({
    "obs", "storage", "shard", "tools", "semantics", "baselines",
    "bench", "runtime", "analysis",
})

#: Bare package imports (their ``__init__`` re-exports the world).
_BARE_PACKAGES = frozenset({
    ("repro",),
    ("repro", "core"),
    ("repro", "gcs"),
    ("repro", "net"),
    ("repro", "sim"),
})


def _accel_module_tuples(
        modules: Sequence[str]) -> Tuple[Tuple[str, ...], ...]:
    return tuple(tuple(name.split(".")) for name in modules)


class CompileDisciplineChecker:
    """Keep the mypyc-compiled module set compile-clean."""

    def __init__(self, modules: Optional[Sequence[str]] = None):
        names = tuple(modules) if modules is not None else ACCEL_MODULES
        self._module_tuples = _accel_module_tuples(names)

    def in_scope(self, path: Path) -> bool:
        parts = module_parts(path)
        return any(parts[-len(mod):] == mod
                   for mod in self._module_tuples)

    def check_paths(self, paths: Iterable[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in collect_py_files(paths):
            if not self.in_scope(path):
                continue
            source = parse_file(path)
            findings.extend(iter_findings(self._check_source(source),
                                          source))
        return findings

    def _check_source(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        path = str(source.path)
        tree = source.tree
        package = module_parts(source.path)[:-1]
        guarded = _type_checking_nodes(tree)
        methods = _method_defs(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_signature(node, path, methods))
            elif isinstance(node, ast.Lambda):
                findings.append(Finding(
                    rule=RULE_ANNOTATIONS, path=path, line=node.lineno,
                    message=("lambda cannot be annotated; use a def with "
                             "full annotations so mypyc compiles it "
                             "natively"),
                    analyzer=ANALYZER))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(node, path))
            elif isinstance(node, ast.Attribute):
                if node.attr == "__dict__":
                    findings.append(self._dynamic_finding(
                        node.lineno, path, "'__dict__' access",
                        "native classes have no instance dict"))
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                if node not in guarded:
                    findings.extend(self._check_import(
                        node, path, package))
        return findings

    # ------------------------------------------------------------------
    # compile-annotations
    # ------------------------------------------------------------------
    def _check_signature(self, node: ast.AST, path: str,
                         methods: Set[ast.AST]) -> List[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        findings: List[Finding] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if node in methods and positional \
                and not _is_staticmethod(node):
            positional = positional[1:]        # self / cls
        unannotated = [a.arg for a in positional + list(args.kwonlyargs)
                       if a.annotation is None]
        for extra in (args.vararg, args.kwarg):
            if extra is not None and extra.annotation is None:
                unannotated.append(f"*{extra.arg}")
        if unannotated:
            findings.append(Finding(
                rule=RULE_ANNOTATIONS, path=path, line=node.lineno,
                message=(f"parameter(s) {', '.join(unannotated)} of "
                         f"{node.name}() lack type annotations; mypyc "
                         f"boxes untyped code, erasing the compiled "
                         f"speedup"),
                analyzer=ANALYZER))
        if node.returns is None:
            findings.append(Finding(
                rule=RULE_ANNOTATIONS, path=path, line=node.lineno,
                message=(f"{node.name}() has no return annotation "
                         f"(use '-> None' for procedures)"),
                analyzer=ANALYZER))
        return findings

    # ------------------------------------------------------------------
    # compile-dynamic
    # ------------------------------------------------------------------
    def _check_call(self, node: ast.Call, path: str) -> List[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _DYNAMIC_CALLS:
            return [self._dynamic_finding(
                node.lineno, path, f"call to {func.id}()",
                "it defeats static compilation and invites "
                "monkeypatching")]
        return []

    def _dynamic_finding(self, line: int, path: str, what: str,
                         why: str) -> Finding:
        return Finding(
            rule=RULE_DYNAMIC, path=path, line=line,
            message=(f"{what} in a compiled module; {why} — the "
                     f"compiled and pure builds must stay "
                     f"interchangeable"),
            analyzer=ANALYZER)

    # ------------------------------------------------------------------
    # compile-imports
    # ------------------------------------------------------------------
    def _check_import(self, node: ast.AST, path: str,
                      package: Tuple[str, ...]) -> List[Finding]:
        findings: List[Finding] = []
        if isinstance(node, ast.Import):
            for alias in node.names:
                resolved = tuple(alias.name.split("."))
                finding = self._import_finding(resolved, node.lineno, path)
                if finding is not None:
                    findings.append(finding)
        elif isinstance(node, ast.ImportFrom):
            resolved = _resolve_import(node, package)
            finding = self._import_finding(resolved, node.lineno, path)
            if finding is not None:
                findings.append(finding)
        return findings

    def _import_finding(self, resolved: Tuple[str, ...], line: int,
                        path: str) -> Optional[Finding]:
        if not resolved or resolved[0] != "repro":
            return None
        why = None
        if resolved in _BARE_PACKAGES:
            why = (f"the bare package {'.'.join(resolved)!r} (its "
                   f"__init__ imports the whole layer)")
        elif len(resolved) >= 2 and resolved[1] in _HEAVY_PACKAGES:
            why = f"the {'.'.join(resolved[:2])!r} subpackage"
        elif resolved[:3] in _HEAVY_MODULES:
            why = f"the heavyweight module {'.'.join(resolved[:3])!r}"
        if why is None:
            return None
        return Finding(
            rule=RULE_IMPORTS, path=path, line=line,
            message=(f"compiled module imports {why}; accel leaves may "
                     f"import only other accel modules, light data-type "
                     f"modules, and the standard library (gate "
                     f"type-only imports behind TYPE_CHECKING)"),
            analyzer=ANALYZER)


def _resolve_import(node: ast.ImportFrom,
                    package: Tuple[str, ...]) -> Tuple[str, ...]:
    """The dotted module an ``ImportFrom`` targets, with relative levels
    resolved against the importing module's package (same scheme as
    :meth:`repro.analysis.seams.SeamEnforcer._resolve_import`)."""
    suffix = tuple((node.module or "").split(".")) if node.module else ()
    if not node.level:
        return suffix
    base = package[:len(package) - (node.level - 1)] \
        if node.level > 1 else package
    return base + suffix


def _type_checking_nodes(tree: ast.Module) -> Set[ast.AST]:
    """Every node inside an ``if TYPE_CHECKING:`` block."""
    guarded: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking(node.test):
            for stmt in node.body:
                for child in ast.walk(stmt):
                    guarded.add(child)
    return guarded


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _method_defs(tree: ast.Module) -> Set[ast.AST]:
    """Functions that are direct children of a class body."""
    methods: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(child)
    return methods


def _is_staticmethod(node: ast.AST) -> bool:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return any(isinstance(dec, ast.Name) and dec.id == "staticmethod"
               for dec in node.decorator_list)
