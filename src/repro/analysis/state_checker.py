"""State-machine cross-checker.

Extracts every ``self._set_state(EngineState.X)`` call from the engine
source by AST walk, together with the state guards dominating it, and
diffs the result against the declared Figure-4 table of
:mod:`repro.core.state_machine`:

* **undeclared-edge** — a guarded call can take a transition the table
  does not declare (the runtime ``check_transition`` would raise, but
  only once the path is actually hit);
* **unreachable-edge** — the table declares an edge no call site can
  produce (dead declaration: the table over-approximates the code and
  would mask an illegal runtime transition);
* **unguarded-handler** — a GCS event handler (``_on_*``) changes
  state without any dominating state guard, relying entirely on the
  runtime check;
* **dynamic-transition** — a ``_set_state`` argument that is not a
  literal ``EngineState`` member, which the checker cannot verify.

The tracker is flow-sensitive inside each method (``if``/``elif``
chains, ``in``-tuples, early-return guards, aliases like ``state =
self.state``, and ``_set_state`` itself narrowing the known state) and
propagates entry constraints through the intra-class call graph to a
fixed point.  Calls made from inside ``lambda``/nested functions are
deferred callbacks and deliberately propagate *no* constraint — by the
time they run, the state may have moved.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from .common import Finding, SourceFile, iter_findings, parse_file

ANALYZER = "state-machine"
RULE_UNDECLARED = "undeclared-edge"
RULE_UNREACHABLE = "unreachable-edge"
RULE_UNGUARDED = "unguarded-handler"
RULE_DYNAMIC = "dynamic-transition"

StateSet = Optional[FrozenSet[str]]  # None = unconstrained (any state)
Edge = Tuple[str, str]


def default_state_table() -> Dict[str, FrozenSet[str]]:
    """The live Figure-4 table, as state-name strings."""
    from ..core.state_machine import TRANSITIONS
    return {old.name: frozenset(new.name for new in news)
            for old, news in TRANSITIONS.items()}


def engine_sources(root: Path) -> List[Path]:
    """The files the cross-checker scans by default: the engine and the
    reconfiguration module under any ``core/`` directory of ``root``."""
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py")
                  if p.parent.name == "core"
                  and p.name in ("engine.py", "reconfig.py"))


def _intersect(a: StateSet, b: StateSet) -> StateSet:
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def _union(a: StateSet, b: StateSet) -> StateSet:
    if a is None or b is None:
        return None
    return a | b


@dataclass
class _SetStateRecord:
    method: str
    line: int
    target: Optional[str]          # None when not a literal member
    sources: StateSet              # states the engine may be in here


@dataclass
class _CallRecord:
    callee: str
    sources: StateSet


@dataclass
class _MethodScan:
    name: str
    line: int
    set_states: List[_SetStateRecord] = field(default_factory=list)
    calls: List[_CallRecord] = field(default_factory=list)


class _BodyScanner:
    """Flow-sensitive walk of one method body."""

    def __init__(self, checker: "StateMachineChecker", method: str,
                 entry: StateSet):
        self.checker = checker
        self.scan = _MethodScan(name=method, line=0)
        self.entry = entry
        self.aliases: Set[str] = set()
        self._deferred_ids: Set[int] = set()

    # -- constraint-carrying statement walk -----------------------------
    def run(self, body: Sequence[ast.stmt]) -> StateSet:
        return self._block(body, self.entry)

    def _block(self, stmts: Sequence[ast.stmt],
               constraint: StateSet) -> StateSet:
        for stmt in stmts:
            constraint = self._stmt(stmt, constraint)
        return constraint

    def _stmt(self, stmt: ast.stmt, constraint: StateSet) -> StateSet:
        if isinstance(stmt, ast.If):
            return self._if(stmt, constraint)
        if isinstance(stmt, ast.Assign):
            self._track_alias(stmt)
            return self._expr(stmt.value, constraint)
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                return self._expr(stmt.value, constraint)
            return constraint
        if isinstance(stmt, ast.Expr):
            return self._expr(stmt.value, constraint)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if getattr(stmt, "value", None) is not None:
                self._expr(stmt.value, constraint)  # type: ignore[arg-type]
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._expr(stmt.exc, constraint)
            return constraint
        if isinstance(stmt, (ast.For, ast.While)):
            changes = self._block_changes_state(stmt.body)
            inner = None if changes else constraint
            self._block(stmt.body, inner)
            self._block(stmt.orelse, inner)
            return None if changes else constraint
        if isinstance(stmt, ast.Try):
            out = self._block(stmt.body, constraint)
            for handler in stmt.handlers:
                self._block(handler.body, None)
            out = self._block(stmt.orelse, out)
            out = self._block(stmt.finalbody, out)
            return out
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr(item.context_expr, constraint)
            return self._block(stmt.body, constraint)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: runs later, no constraint carries over.
            self._deferred(stmt)
            return constraint
        if isinstance(stmt, ast.Assert):
            self._expr(stmt.test, constraint)
            return constraint
        return constraint

    def _if(self, stmt: ast.If, constraint: StateSet) -> StateSet:
        pos, neg = self._eval_test(stmt.test)
        body_in = _intersect(constraint, pos)
        else_in = _intersect(constraint, neg)
        body_out = self._block(stmt.body, body_in)
        else_out = self._block(stmt.orelse, else_in) if stmt.orelse \
            else else_in
        body_ends = self._terminates(stmt.body)
        else_ends = bool(stmt.orelse) and self._terminates(stmt.orelse)
        if body_ends and else_ends:
            return constraint          # fall-through unreachable
        if body_ends:
            return else_out
        if else_ends:
            return body_out
        return _union(body_out, else_out)

    def _terminates(self, stmts: Sequence[ast.stmt]) -> bool:
        if not stmts:
            return False
        last = stmts[-1]
        if isinstance(last, (ast.Return, ast.Raise, ast.Continue,
                             ast.Break)):
            return True
        if isinstance(last, ast.If) and last.orelse:
            return (self._terminates(last.body)
                    and self._terminates(last.orelse))
        return False

    # -- expressions: record _set_state and self-method calls -----------
    def _expr(self, node: ast.expr, constraint: StateSet) -> StateSet:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                self._deferred(sub)
        constraint = self._visit_calls(node, constraint)
        return constraint

    def _visit_calls(self, node: ast.expr,
                     constraint: StateSet) -> StateSet:
        # Statement-level precision is enough — one statement rarely
        # chains two state-changing calls.  Calls inside lambdas were
        # pre-marked deferred and are skipped here.
        for sub in ast.walk(node):
            if id(sub) in self._deferred_ids:
                continue
            if isinstance(sub, ast.Call):
                constraint = self._call(sub, constraint)
        return constraint

    def _deferred(self, func: ast.AST) -> None:
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            for sub in ast.walk(stmt):
                self._deferred_ids.add(id(sub))
            self._record_deferred_calls(stmt)

    def _record_deferred_calls(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = self._self_method(sub.func)
                if name == self.checker.set_state_name:
                    self.scan.set_states.append(_SetStateRecord(
                        method=self.scan.name, line=sub.lineno,
                        target=self._target_of(sub), sources=None))
                elif name is not None:
                    self.scan.calls.append(_CallRecord(name, None))

    def _call(self, call: ast.Call, constraint: StateSet) -> StateSet:
        name = self._self_method(call.func)
        # A constraint equal to the whole universe carries no
        # information (an if/elif chain whose branches union back to
        # every state); record it as unconstrained.
        sources = constraint
        if sources is not None and sources == self.checker.all_states:
            sources = None
        if name == self.checker.set_state_name:
            target = self._target_of(call)
            self.scan.set_states.append(_SetStateRecord(
                method=self.scan.name, line=call.lineno,
                target=target, sources=sources))
            if target is not None:
                return frozenset({target})
            return None
        if name is not None:
            self.scan.calls.append(_CallRecord(name, sources))
            if name in self.checker.state_changing:
                return None
        return constraint

    def _self_method(self, func: ast.expr) -> Optional[str]:
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            return func.attr
        return None

    def _target_of(self, call: ast.Call) -> Optional[str]:
        if len(call.args) != 1:
            return None
        return self.checker.state_member(call.args[0])

    # -- aliases and guards ---------------------------------------------
    def _track_alias(self, stmt: ast.Assign) -> None:
        names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        if self._is_state_expr(stmt.value):
            self.aliases.update(names)
        else:
            self.aliases.difference_update(names)

    def _is_state_expr(self, node: ast.expr) -> bool:
        if (isinstance(node, ast.Attribute) and node.attr == "state"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return True
        return isinstance(node, ast.Name) and node.id in self.aliases

    def _eval_test(self, test: ast.expr) -> Tuple[StateSet, StateSet]:
        """Return (states-if-true, states-if-false); None = no info."""
        checker = self.checker
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            pos, neg = self._eval_test(test.operand)
            return neg, pos
        if isinstance(test, ast.BoolOp):
            parts = [self._eval_test(v) for v in test.values]
            if isinstance(test.op, ast.And):
                # a and b: true-side intersects what is understood;
                # false-side (not a or not b) needs every operand
                # understood to stay sound.
                pos: StateSet = None
                for p, _ in parts:
                    pos = _intersect(pos, p)
                negs = [n for _, n in parts]
                neg: StateSet = frozenset().union(*negs) \
                    if negs and all(n is not None for n in negs) else None
                return pos, neg
            # a or b: true-side needs every operand understood;
            # false-side intersects the understood negations.
            poss = [p for p, _ in parts]
            pos = frozenset().union(*poss) \
                if poss and all(p is not None for p in poss) else None
            neg = None
            for _, n in parts:
                neg = _intersect(neg, n)
            return pos, neg
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None, None
        left, op, right = test.left, test.ops[0], test.comparators[0]
        state_side = None
        other = None
        if self._is_state_expr(left):
            state_side, other = left, right
        elif self._is_state_expr(right):
            state_side, other = right, left
        if state_side is None:
            return None, None
        universe = checker.all_states
        if isinstance(op, (ast.Eq, ast.Is)):
            member = checker.state_member(other)
            if member is None:
                return None, None
            return frozenset({member}), universe - {member}
        if isinstance(op, (ast.NotEq, ast.IsNot)):
            member = checker.state_member(other)
            if member is None:
                return None, None
            return universe - {member}, frozenset({member})
        if isinstance(op, (ast.In, ast.NotIn)):
            members = checker.state_members(other)
            if members is None:
                return None, None
            if isinstance(op, ast.In):
                return members, universe - members
            return universe - members, members
        return None, None

    def _block_changes_state(self, stmts: Sequence[ast.stmt]) -> bool:
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    name = self._self_method(sub.func)
                    if name is not None and (
                            name == self.checker.set_state_name
                            or name in self.checker.state_changing):
                        return True
        return False


class StateMachineChecker:
    """Cross-check engine sources against the declared Figure-4 table."""

    def __init__(self, table: Optional[Mapping[str, FrozenSet[str]]] = None,
                 set_state_name: str = "_set_state",
                 enum_name: str = "EngineState",
                 handler_prefix: str = "_on_",
                 max_rounds: int = 8):
        self.table = dict(table) if table is not None \
            else default_state_table()
        self.all_states: FrozenSet[str] = frozenset(self.table)
        self.edges: Set[Edge] = {
            (old, new) for old, news in self.table.items()
            for new in news}
        self.set_state_name = set_state_name
        self.enum_name = enum_name
        self.handler_prefix = handler_prefix
        self.max_rounds = max_rounds
        self.state_changing: Set[str] = set()

    # -- enum literal helpers -------------------------------------------
    def state_member(self, node: ast.expr) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == self.enum_name
                and node.attr in self.all_states):
            return node.attr
        return None

    def state_members(self, node: ast.expr) -> StateSet:
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            members = [self.state_member(e) for e in node.elts]
            if all(m is not None for m in members):
                return frozenset(m for m in members if m is not None)
        member = self.state_member(node)
        if member is not None:
            return frozenset({member})
        return None

    # -- scanning --------------------------------------------------------
    def check_paths(self, paths: Iterable[Path],
                    table_path: Optional[Path] = None) -> List[Finding]:
        ordered = sorted(set(paths))
        findings: List[Finding] = []
        witnesses: Set[Edge] = set()
        any_set_state = False
        for path in ordered:
            source = parse_file(path)
            file_findings, file_witnesses, saw = self._check_source(source)
            findings.extend(iter_findings(file_findings, source))
            witnesses |= file_witnesses
            any_set_state = any_set_state or saw
        if any_set_state:
            missing = sorted(self.edges - witnesses)
            anchor = str(table_path) if table_path is not None \
                else (str(ordered[0]) if ordered else "<table>")
            for old, new in missing:
                findings.append(Finding(
                    rule=RULE_UNREACHABLE, path=anchor, line=1,
                    message=(f"declared edge {old} -> {new} has no "
                             f"matching _set_state call site"),
                    analyzer=ANALYZER))
        return findings

    def _check_source(self, source: SourceFile
                      ) -> Tuple[List[Finding], Set[Edge], bool]:
        findings: List[Finding] = []
        witnesses: Set[Edge] = set()
        saw_set_state = False
        for cls in [n for n in ast.walk(source.tree)
                    if isinstance(n, ast.ClassDef)]:
            methods = {n.name: n for n in cls.body
                       if isinstance(n, ast.FunctionDef)}
            if not self._class_uses_set_state(cls, methods):
                continue
            saw_set_state = True
            scans = self._fixed_point(cls, methods)
            for scan in scans.values():
                for record in scan.set_states:
                    if record.target is None:
                        findings.append(Finding(
                            rule=RULE_DYNAMIC, path=str(source.path),
                            line=record.line,
                            message=(f"{cls.name}.{record.method}: "
                                     f"_set_state target is not a literal "
                                     f"{self.enum_name} member"),
                            analyzer=ANALYZER))
                        continue
                    if record.sources is None:
                        witnesses |= {(old, record.target)
                                      for old in self.all_states
                                      if (old, record.target) in self.edges}
                        if scan.name.startswith(self.handler_prefix):
                            findings.append(Finding(
                                rule=RULE_UNGUARDED,
                                path=str(source.path), line=record.line,
                                message=(f"{cls.name}.{scan.name}: handler "
                                         f"changes state to "
                                         f"{record.target} without a "
                                         f"dominating state guard"),
                                analyzer=ANALYZER))
                        continue
                    for old in sorted(record.sources):
                        if old == record.target:
                            continue
                        witnesses.add((old, record.target))
                        if (old, record.target) not in self.edges:
                            findings.append(Finding(
                                rule=RULE_UNDECLARED,
                                path=str(source.path), line=record.line,
                                message=(f"{cls.name}.{record.method}: "
                                         f"transition {old} -> "
                                         f"{record.target} is not declared "
                                         f"in the Figure-4 table"),
                                analyzer=ANALYZER))
        return findings, witnesses, saw_set_state

    def _class_uses_set_state(self, cls: ast.ClassDef,
                              methods: Dict[str, ast.FunctionDef]) -> bool:
        for method in methods.values():
            for node in ast.walk(method):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == self.set_state_name
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"):
                    return True
        return False

    def _fixed_point(self, cls: ast.ClassDef,
                     methods: Dict[str, ast.FunctionDef]
                     ) -> Dict[str, _MethodScan]:
        self.state_changing = self._state_changing_closure(methods)
        external = self._externally_invoked(cls, methods)
        entries: Dict[str, StateSet] = {name: None for name in methods}
        scans: Dict[str, _MethodScan] = {}
        for _ in range(self.max_rounds):
            scans = {}
            call_sites: Dict[str, List[StateSet]] = {n: []
                                                     for n in methods}
            for name, node in methods.items():
                scanner = _BodyScanner(self, name, entries[name])
                scanner.scan.line = node.lineno
                scanner.run(node.body)
                scans[name] = scanner.scan
                for call in scanner.scan.calls:
                    if call.callee in call_sites:
                        call_sites[call.callee].append(call.sources)
            new_entries: Dict[str, StateSet] = {}
            for name in methods:
                if name in external or not call_sites[name]:
                    new_entries[name] = None
                    continue
                entry: StateSet = frozenset()
                for sources in call_sites[name]:
                    entry = _union(entry, sources)
                if entry is not None and entry == self.all_states:
                    entry = None
                new_entries[name] = entry
            if new_entries == entries:
                break
            entries = new_entries
        return scans

    def _state_changing_closure(self, methods: Dict[str, ast.FunctionDef]
                                ) -> Set[str]:
        direct: Set[str] = set()
        calls: Dict[str, Set[str]] = {}
        for name, node in methods.items():
            calls[name] = set()
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == "self"):
                    if sub.func.attr == self.set_state_name:
                        direct.add(name)
                    else:
                        calls[name].add(sub.func.attr)
        closure = set(direct)
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name not in closure and callees & closure:
                    closure.add(name)
                    changed = True
        return closure

    def _externally_invoked(self, cls: ast.ClassDef,
                            methods: Dict[str, ast.FunctionDef]
                            ) -> Set[str]:
        """Methods reachable from outside the class: public methods and
        any ``self.m`` referenced outside a direct call (callbacks)."""
        external = {name for name in methods
                    if not name.startswith("_")}
        for node in ast.walk(cls):
            # A bare self.m reference (not the func of a Call) means
            # the method escapes as a callback.
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in methods
                    and self._escapes(cls, node)):
                external.add(node.attr)
        return external

    def _escapes(self, cls: ast.ClassDef, attr: ast.Attribute) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Call) and node.func is attr:
                return False
        return True
