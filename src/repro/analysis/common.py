"""Shared infrastructure of the static-analysis suite.

Findings, inline suppressions, and source discovery.  Everything is
stdlib-only: the analyzers parse with :mod:`ast` and :mod:`tokenize`
and never import the code under analysis.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: ``# repro: allow[rule-a,rule-b] -- optional reason``
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[a-z0-9*,\s-]+)\]"
    r"(?:\s*--\s*(?P<reason>.*))?")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, pointing at a file/line."""

    rule: str
    path: str
    line: int
    message: str
    analyzer: str = ""
    suppressed: bool = False

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "analyzer": self.analyzer,
            "suppressed": self.suppressed,
        }


class Suppressions:
    """Inline suppression comments of one source file.

    ``# repro: allow[rule]`` suppresses findings of that rule on the
    same line; on a standalone comment line it covers the next code
    line instead.  ``allow[*]`` suppresses every rule.  A suppression
    in the first comment block of the file (before any code) applies to
    the whole file.  A reason can follow after ``--`` and is kept for
    the JSON report.
    """

    def __init__(self, line_rules: Dict[int, Set[str]],
                 file_rules: Set[str]):
        self._line_rules = line_rules
        self._file_rules = file_rules

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        line_rules: Dict[int, Set[str]] = {}
        file_rules: Set[str] = set()
        pending: Set[str] = set()     # from standalone comment lines
        saw_code = False
        line_had_code = False
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    match = _SUPPRESS_RE.search(tok.string)
                    if match is None:
                        continue
                    rules = {r.strip() for r in
                             match.group("rules").split(",") if r.strip()}
                    line_rules.setdefault(tok.start[0], set()).update(rules)
                    if not saw_code:
                        file_rules.update(rules)
                    if not line_had_code:
                        pending.update(rules)
                elif tok.type in (tokenize.NAME, tokenize.NUMBER,
                                  tokenize.STRING, tokenize.OP):
                    saw_code = True
                    line_had_code = True
                    if pending:
                        line_rules.setdefault(tok.start[0],
                                              set()).update(pending)
                        pending.clear()
                elif tok.type in (tokenize.NEWLINE, tokenize.NL):
                    line_had_code = False
        except tokenize.TokenError:
            pass
        return cls(line_rules, file_rules)

    def covers(self, rule: str, line: int) -> bool:
        rules = self._line_rules.get(line, set()) | self._file_rules
        return rule in rules or "*" in rules


@dataclass
class SourceFile:
    """A parsed source file plus its suppression map."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: Suppressions = field(init=False)

    def __post_init__(self) -> None:
        self.suppressions = Suppressions.scan(self.source)


def parse_file(path: Path) -> SourceFile:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return SourceFile(path=path, source=source, tree=tree)


def collect_py_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def module_parts(path: Path) -> Tuple[str, ...]:
    """Dotted-module path components of ``path`` relative to the
    innermost enclosing package root (walks up past ``__init__.py``
    files).  ``src/repro/core/engine.py`` -> ``("repro", "core",
    "engine")``; files outside any package yield just the stem."""
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return tuple(parts) if parts else (path.stem,)


def subpackage_of(path: Path, root_package: str = "repro") -> Optional[str]:
    """The first package component under ``root_package`` for ``path``
    (``.../repro/gcs/daemon.py`` -> ``"gcs"``), or None if the file is
    not inside ``root_package``."""
    parts = module_parts(path)
    if root_package not in parts:
        return None
    index = parts.index(root_package)
    if index + 1 < len(parts):
        return parts[index + 1]
    return None


def iter_findings(findings: Iterable[Finding],
                  source: SourceFile) -> Iterator[Finding]:
    """Mark findings suppressed by inline comments in ``source``."""
    for finding in findings:
        if source.suppressions.covers(finding.rule, finding.line):
            yield Finding(rule=finding.rule, path=finding.path,
                          line=finding.line, message=finding.message,
                          analyzer=finding.analyzer, suppressed=True)
        else:
            yield finding
