"""Runtime-seam enforcer.

PR 2 split the stack along ``Runtime`` / ``Transport`` protocols
(:mod:`repro.runtime.base`): protocol code asks the runtime for clocks,
timers, and message delivery, and only the runtime adapters
(``SimRuntime`` for deterministic simulation, ``AsyncioRuntime`` for
real deployment) touch the event loop, sockets, or the host clock.
That seam is what makes the same engine/daemon code runnable both under
the simulation used for the paper's figures and on asyncio.

This analyzer keeps the seam honest:

* **seam-import** — protocol modules importing ``asyncio``, ``socket``,
  ``selectors``, ``threading``, ``time``, ``signal``, ``subprocess``,
  or ``concurrent.futures`` directly.  Any such import couples the
  protocol to a particular runtime and breaks simulation determinism.
* **seam-blocking-io** — calls that perform blocking filesystem I/O in
  protocol code (``open``, ``os.fsync``, ``os.fdatasync``): durability
  must go through the storage abstraction so the simulation can model
  sync latency (the paper's Section 5 crash-recovery argument depends
  on controlled sync points).
* **seam-framing** — imports of :mod:`struct` anywhere but
  :mod:`repro.net.codec`.  The binary wire format lives in exactly one
  module; scattering struct-level framing invites version skew between
  encoders and decoders.  Unlike the other rules this one also covers
  the otherwise-exempt packages (a runtime adapter hand-packing frames
  would bypass the codec's versioned header just as badly).
* **flight-clock** — the flight recorder (:mod:`repro.obs.flight`)
  importing a time source (``time``, ``datetime``) or evaluating a
  ``.now`` attribute.  Flight-recorder timestamps must arrive as
  caller parameters off the Runtime clock: a recorder that reads its
  own clock would silently diverge between simulated and live runs
  and could perturb the fig5a determinism pin.
* **shard-isolation** — shard *policy* modules (everything in
  :mod:`repro.shard` except the composition roots ``fabric`` and
  ``live``) importing :mod:`repro.core` or :mod:`repro.gcs`, whether
  absolutely or relatively.  The router, the transaction procedures,
  and the coordinator are pure data-plane policy reusable against any
  replication group implementation; only the two composition roots may
  wire them to actual engines and GCS daemons.

Modules under the packages in :data:`SEAM_EXEMPT_PACKAGES` (the runtime
adapters themselves, operational tools, and this analysis package) are
exempt from the seam rules.  Deliberate exceptions elsewhere carry
``# repro: allow[seam-import] -- reason``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

from .common import (Finding, SourceFile, collect_py_files, iter_findings,
                     module_parts, parse_file, subpackage_of)

ANALYZER = "runtime-seam"
RULE_IMPORT = "seam-import"
RULE_BLOCKING_IO = "seam-blocking-io"
RULE_FRAMING = "seam-framing"
RULE_SHARD_ISOLATION = "shard-isolation"
RULE_FLIGHT_CLOCK = "flight-clock"

#: Subpackages of ``repro`` allowed to touch the host runtime directly.
SEAM_EXEMPT_PACKAGES = frozenset({"runtime", "tools", "analysis"})

#: Top-level modules protocol code must not import directly.
_BANNED_MODULES = frozenset({
    "asyncio", "socket", "selectors", "threading", "time", "signal",
    "subprocess", "multiprocessing", "concurrent",
})

#: os functions that force blocking filesystem I/O.
_BLOCKING_OS_FUNCS = frozenset({"fsync", "fdatasync", "sync"})

#: Modules that constitute struct-level wire framing.
_FRAMING_MODULES = frozenset({"struct"})

#: The one module allowed to own the binary wire format.
_CODEC_MODULE = ("repro", "net", "codec")

#: Shard-package modules allowed to compose with the engine layers.
_SHARD_COMPOSITION_ROOTS = frozenset({"fabric", "live"})

#: repro subpackages the shard policy modules must not reach into.
_SHARD_FORBIDDEN_PACKAGES = frozenset({"core", "gcs"})

#: The flight recorder: timestamps are caller parameters, never read.
_FLIGHT_MODULE = ("repro", "obs", "flight")

#: Time sources the flight recorder must not import.
_CLOCK_MODULES = frozenset({"time", "datetime"})


class SeamEnforcer:
    """Verify protocol code reaches the host only through the seam."""

    def __init__(self, exempt: Optional[Set[str]] = None):
        self.exempt = set(exempt) if exempt is not None \
            else set(SEAM_EXEMPT_PACKAGES)

    def in_scope(self, path: Path) -> bool:
        sub = subpackage_of(path)
        return sub is not None and sub not in self.exempt

    def in_framing_scope(self, path: Path) -> bool:
        """Framing applies to every repro module except the codec —
        including the seam-exempt packages."""
        if subpackage_of(path) is None:
            return False
        return module_parts(path)[-3:] != _CODEC_MODULE

    def in_flight_scope(self, path: Path) -> bool:
        """The flight-clock rule covers exactly the recorder module."""
        return module_parts(path)[-3:] == _FLIGHT_MODULE

    def in_shard_scope(self, path: Path) -> bool:
        """Shard isolation covers the shard package's policy modules —
        everything but the composition roots."""
        if subpackage_of(path) != "shard":
            return False
        if path.name == "__init__.py":
            return True     # may re-export, must not import engines
        return module_parts(path)[-1] not in _SHARD_COMPOSITION_ROOTS

    def _shard_package(self, path: Path) -> Tuple[str, ...]:
        """The dotted package containing ``path`` (for resolving
        relative imports)."""
        parts = module_parts(path)
        return parts if path.name == "__init__.py" else parts[:-1]

    def check_paths(self, paths: Iterable[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in collect_py_files(paths):
            seam = self.in_scope(path)
            framing = self.in_framing_scope(path)
            shard = self.in_shard_scope(path)
            flight = self.in_flight_scope(path)
            if not seam and not framing and not shard and not flight:
                continue
            source = parse_file(path)
            findings.extend(iter_findings(
                self._check_source(source, seam, framing, shard, flight),
                source))
        return findings

    def _check_source(self, source: SourceFile, seam: bool = True,
                      framing: bool = True,
                      shard: bool = False,
                      flight: bool = False) -> List[Finding]:
        findings: List[Finding] = []
        path = str(source.path)
        package = self._shard_package(source.path) if shard else ()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if flight and top in _CLOCK_MODULES:
                        findings.append(self._flight_finding(
                            node.lineno, path,
                            f"import of {alias.name!r}"))
                    if seam and top in _BANNED_MODULES:
                        findings.append(Finding(
                            rule=RULE_IMPORT, path=path, line=node.lineno,
                            message=(f"direct import of {alias.name!r}; "
                                     f"protocol code must use the "
                                     f"Runtime/Transport seam "
                                     f"(repro.runtime.base)"),
                            analyzer=ANALYZER))
                    if framing and top in _FRAMING_MODULES:
                        findings.append(self._framing_finding(
                            node.lineno, path, alias.name))
                    if shard and self._shard_forbidden(
                            tuple(alias.name.split("."))):
                        findings.append(self._shard_finding(
                            node.lineno, path, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if shard:
                    resolved = self._resolve_import(node, package)
                    if self._shard_forbidden(resolved):
                        findings.append(self._shard_finding(
                            node.lineno, path, ".".join(resolved)))
                if node.level:
                    continue               # relative import, in-package
                top = (node.module or "").split(".")[0]
                if flight and top in _CLOCK_MODULES:
                    findings.append(self._flight_finding(
                        node.lineno, path,
                        f"import from {node.module!r}"))
                if seam and top in _BANNED_MODULES:
                    findings.append(Finding(
                        rule=RULE_IMPORT, path=path, line=node.lineno,
                        message=(f"direct import from {node.module!r}; "
                                 f"protocol code must use the "
                                 f"Runtime/Transport seam "
                                 f"(repro.runtime.base)"),
                        analyzer=ANALYZER))
                if framing and top in _FRAMING_MODULES:
                    findings.append(self._framing_finding(
                        node.lineno, path, node.module or top))
            elif isinstance(node, ast.Attribute):
                if flight and node.attr == "now":
                    findings.append(self._flight_finding(
                        node.lineno, path, "evaluation of '.now'"))
            elif seam and isinstance(node, ast.Call):
                findings.extend(self._blocking_call(node, path))
        return findings

    @staticmethod
    def _resolve_import(node: ast.ImportFrom,
                        package: Tuple[str, ...]) -> Tuple[str, ...]:
        """The dotted module an ``ImportFrom`` targets, with relative
        levels resolved against the importing module's package."""
        suffix = tuple((node.module or "").split(".")) \
            if node.module else ()
        if not node.level:
            return suffix
        base = package[:len(package) - (node.level - 1)] \
            if node.level > 1 else package
        return base + suffix

    @staticmethod
    def _shard_forbidden(resolved: Tuple[str, ...]) -> bool:
        return (len(resolved) >= 2 and resolved[0] == "repro"
                and resolved[1] in _SHARD_FORBIDDEN_PACKAGES)

    def _shard_finding(self, line: int, path: str,
                       module: str) -> Finding:
        return Finding(
            rule=RULE_SHARD_ISOLATION, path=path, line=line,
            message=(f"shard policy module imports {module!r}; only the "
                     f"composition roots (repro.shard.fabric, "
                     f"repro.shard.live) may touch the engine and GCS "
                     f"layers"),
            analyzer=ANALYZER)

    def _flight_finding(self, line: int, path: str,
                        what: str) -> Finding:
        return Finding(
            rule=RULE_FLIGHT_CLOCK, path=path, line=line,
            message=(f"{what} in the flight recorder; timestamps must "
                     f"be caller parameters off the Runtime clock so "
                     f"recording never perturbs determinism"),
            analyzer=ANALYZER)

    def _framing_finding(self, line: int, path: str,
                         module: str) -> Finding:
        return Finding(
            rule=RULE_FRAMING, path=path, line=line,
            message=(f"import of {module!r} outside repro.net.codec; "
                     f"the binary wire format lives in exactly one "
                     f"module"),
            analyzer=ANALYZER)

    def _blocking_call(self, node: ast.Call, path: str) -> List[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return [Finding(
                rule=RULE_BLOCKING_IO, path=path, line=node.lineno,
                message=("blocking open() in protocol code; durability "
                         "goes through the storage abstraction"),
                analyzer=ANALYZER)]
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
                and func.attr in _BLOCKING_OS_FUNCS):
            return [Finding(
                rule=RULE_BLOCKING_IO, path=path, line=node.lineno,
                message=(f"os.{func.attr}() blocks in protocol code; "
                         f"durability goes through the storage "
                         f"abstraction"),
                analyzer=ANALYZER)]
        return []
