"""Runtime-seam enforcer.

PR 2 split the stack along ``Runtime`` / ``Transport`` protocols
(:mod:`repro.runtime.base`): protocol code asks the runtime for clocks,
timers, and message delivery, and only the runtime adapters
(``SimRuntime`` for deterministic simulation, ``AsyncioRuntime`` for
real deployment) touch the event loop, sockets, or the host clock.
That seam is what makes the same engine/daemon code runnable both under
the simulation used for the paper's figures and on asyncio.

This analyzer keeps the seam honest:

* **seam-import** — protocol modules importing ``asyncio``, ``socket``,
  ``selectors``, ``threading``, ``time``, ``signal``, ``subprocess``,
  or ``concurrent.futures`` directly.  Any such import couples the
  protocol to a particular runtime and breaks simulation determinism.
* **seam-blocking-io** — calls that perform blocking filesystem I/O in
  protocol code (``open``, ``os.fsync``, ``os.fdatasync``): durability
  must go through the storage abstraction so the simulation can model
  sync latency (the paper's Section 5 crash-recovery argument depends
  on controlled sync points).

Modules under the packages in :data:`SEAM_EXEMPT_PACKAGES` (the runtime
adapters themselves, operational tools, and this analysis package) are
exempt.  Deliberate exceptions elsewhere carry
``# repro: allow[seam-import] -- reason``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set

from .common import (Finding, SourceFile, collect_py_files, iter_findings,
                     parse_file, subpackage_of)

ANALYZER = "runtime-seam"
RULE_IMPORT = "seam-import"
RULE_BLOCKING_IO = "seam-blocking-io"

#: Subpackages of ``repro`` allowed to touch the host runtime directly.
SEAM_EXEMPT_PACKAGES = frozenset({"runtime", "tools", "analysis"})

#: Top-level modules protocol code must not import directly.
_BANNED_MODULES = frozenset({
    "asyncio", "socket", "selectors", "threading", "time", "signal",
    "subprocess", "multiprocessing", "concurrent",
})

#: os functions that force blocking filesystem I/O.
_BLOCKING_OS_FUNCS = frozenset({"fsync", "fdatasync", "sync"})


class SeamEnforcer:
    """Verify protocol code reaches the host only through the seam."""

    def __init__(self, exempt: Optional[Set[str]] = None):
        self.exempt = set(exempt) if exempt is not None \
            else set(SEAM_EXEMPT_PACKAGES)

    def in_scope(self, path: Path) -> bool:
        sub = subpackage_of(path)
        return sub is not None and sub not in self.exempt

    def check_paths(self, paths: Iterable[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in collect_py_files(paths):
            if not self.in_scope(path):
                continue
            source = parse_file(path)
            findings.extend(iter_findings(self._check_source(source),
                                          source))
        return findings

    def _check_source(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        path = str(source.path)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _BANNED_MODULES:
                        findings.append(Finding(
                            rule=RULE_IMPORT, path=path, line=node.lineno,
                            message=(f"direct import of {alias.name!r}; "
                                     f"protocol code must use the "
                                     f"Runtime/Transport seam "
                                     f"(repro.runtime.base)"),
                            analyzer=ANALYZER))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue               # relative import, in-package
                top = (node.module or "").split(".")[0]
                if top in _BANNED_MODULES:
                    findings.append(Finding(
                        rule=RULE_IMPORT, path=path, line=node.lineno,
                        message=(f"direct import from {node.module!r}; "
                                 f"protocol code must use the "
                                 f"Runtime/Transport seam "
                                 f"(repro.runtime.base)"),
                        analyzer=ANALYZER))
            elif isinstance(node, ast.Call):
                findings.extend(self._blocking_call(node, path))
        return findings

    def _blocking_call(self, node: ast.Call, path: str) -> List[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return [Finding(
                rule=RULE_BLOCKING_IO, path=path, line=node.lineno,
                message=("blocking open() in protocol code; durability "
                         "goes through the storage abstraction"),
                analyzer=ANALYZER)]
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
                and func.attr in _BLOCKING_OS_FUNCS):
            return [Finding(
                rule=RULE_BLOCKING_IO, path=path, line=node.lineno,
                message=(f"os.{func.attr}() blocks in protocol code; "
                         f"durability goes through the storage "
                         f"abstraction"),
                analyzer=ANALYZER)]
        return []
