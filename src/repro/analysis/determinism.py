"""Determinism linter for protocol modules.

The replication protocol must be a deterministic function of its input
event sequence: the simulation relies on it for reproducible runs, and
the algorithm itself relies on it — every server replays the same
totally-ordered actions and must reach the same state (Section 4 of
the paper calls this out as the core soundness obligation).  This
linter flags the common ways Python code silently breaks that:

* **wall-clock** — ``time.time()`` / ``time.monotonic()`` /
  ``datetime.now()`` & friends.  Protocol code must take time from the
  ``Runtime`` seam (simulated or real), never from the host clock.
* **global-random** — module-level ``random.*`` calls (or importing
  names out of ``random``).  All randomness must flow through a seeded
  ``random.Random`` instance owned by the simulation.
* **unordered-iteration** — iterating a ``set``/``dict`` (or
  ``set(...)`` call) where the elements feed ordering: directly in a
  ``for`` loop or comprehension without an enclosing ``sorted()``.
  Set iteration order varies across processes (hash randomization), so
  anything derived from it diverges between servers.
* **id-key** — using ``id(x)`` as a dict key / set member / sort key;
  object addresses differ across runs.
* **float-equality** — ``==`` / ``!=`` between float literals and
  protocol values; floating-point drift makes this replay-unstable.

Scope: packages named in :data:`PROTOCOL_PACKAGES`.  Intentional uses
carry ``# repro: allow[rule] -- reason``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set

from .common import (Finding, SourceFile, collect_py_files, iter_findings,
                     parse_file, subpackage_of)

ANALYZER = "determinism"
RULE_WALL_CLOCK = "wall-clock"
RULE_GLOBAL_RANDOM = "global-random"
RULE_UNORDERED_ITER = "unordered-iteration"
RULE_ID_KEY = "id-key"
RULE_FLOAT_EQ = "float-equality"

#: Subpackages of ``repro`` whose code must be deterministic.
PROTOCOL_PACKAGES = frozenset(
    {"core", "gcs", "sim", "storage", "semantics"})

#: time/datetime attributes that read the host clock.
_WALL_CLOCK_ATTRS = {
    "time": {"time", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "time_ns", "clock_gettime"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: ``random`` module functions whose use means unseeded global state.
_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "expovariate", "betavariate",
    "seed", "getrandbits", "normalvariate", "triangular",
}


class DeterminismLinter:
    """AST linter for nondeterminism hazards in protocol code."""

    def __init__(self, packages: Optional[Set[str]] = None):
        self.packages = set(packages) if packages is not None \
            else set(PROTOCOL_PACKAGES)

    def in_scope(self, path: Path) -> bool:
        return subpackage_of(path) in self.packages

    def check_paths(self, paths: Iterable[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in collect_py_files(paths):
            if not self.in_scope(path):
                continue
            source = parse_file(path)
            findings.extend(iter_findings(self._check_source(source),
                                          source))
        return findings

    def _check_source(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        path = str(source.path)
        random_aliases = self._random_aliases(source.tree)
        sorted_wrapped = self._sorted_wrapped_nodes(source.tree)
        for node in ast.walk(source.tree):
            findings.extend(self._wall_clock(node, path))
            findings.extend(self._global_random(node, path,
                                                random_aliases))
            findings.extend(self._unordered_iteration(node, path,
                                                      sorted_wrapped))
            findings.extend(self._id_key(node, path))
            findings.extend(self._float_equality(node, path))
        return findings

    # -- wall-clock -------------------------------------------------------
    def _wall_clock(self, node: ast.AST, path: str) -> List[Finding]:
        if not isinstance(node, ast.Call):
            return []
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif (isinstance(base, ast.Attribute)
                  and isinstance(base.value, ast.Name)
                  and base.value.id == "datetime"):
                base_name = base.attr          # datetime.datetime.now()
            if base_name in _WALL_CLOCK_ATTRS \
                    and func.attr in _WALL_CLOCK_ATTRS[base_name]:
                return [Finding(
                    rule=RULE_WALL_CLOCK, path=path, line=node.lineno,
                    message=(f"{base_name}.{func.attr}() reads the host "
                             f"clock; take time from the Runtime seam"),
                    analyzer=ANALYZER)]
        return []

    # -- global random ----------------------------------------------------
    def _random_aliases(self, tree: ast.Module) -> Set[str]:
        """Names bound (at module level) to functions imported *from*
        the random module, e.g. ``from random import choice``."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RANDOM_FUNCS:
                        aliases.add(alias.asname or alias.name)
        return aliases

    def _global_random(self, node: ast.AST, path: str,
                       aliases: Set[str]) -> List[Finding]:
        if not isinstance(node, ast.Call):
            return []
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in _GLOBAL_RANDOM_FUNCS):
            return [Finding(
                rule=RULE_GLOBAL_RANDOM, path=path, line=node.lineno,
                message=(f"random.{func.attr}() uses the unseeded global "
                         f"generator; use the simulation's seeded "
                         f"random.Random instance"),
                analyzer=ANALYZER)]
        if isinstance(func, ast.Name) and func.id in aliases:
            return [Finding(
                rule=RULE_GLOBAL_RANDOM, path=path, line=node.lineno,
                message=(f"{func.id}() comes from the global random "
                         f"module; use the simulation's seeded "
                         f"random.Random instance"),
                analyzer=ANALYZER)]
        return []

    # -- unordered iteration ----------------------------------------------
    def _sorted_wrapped_nodes(self, tree: ast.Module) -> Set[int]:
        """ids of expressions appearing directly inside ``sorted(...)``,
        ``min(...)``, ``max(...)``, ``len(...)``, ``sum(...)``,
        ``frozenset(...)``/``set(...)`` or equality — contexts where set
        iteration order cannot leak."""
        neutral = {"sorted", "min", "max", "len", "sum", "set",
                   "frozenset", "any", "all"}
        wrapped: Set[int] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in neutral):
                for arg in node.args:
                    wrapped.add(id(arg))
            if isinstance(node, ast.Compare):
                wrapped.add(id(node.left))
                for comparator in node.comparators:
                    wrapped.add(id(comparator))
        return wrapped

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.Sub)):
            # s1 & s2 / s1 | s2 / s1 - s2 on sets; only flag when one
            # side is itself literally a set expression.
            return self._is_set_expr(node.left) \
                or self._is_set_expr(node.right)
        return False

    def _unordered_iteration(self, node: ast.AST, path: str,
                             wrapped: Set[int]) -> List[Finding]:
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        findings = []
        for it in iters:
            if id(it) in wrapped:
                continue
            if self._is_set_expr(it):
                findings.append(Finding(
                    rule=RULE_UNORDERED_ITER, path=path, line=it.lineno,
                    message=("iterating a set in hash order; wrap in "
                             "sorted() so every server sees the same "
                             "sequence"),
                    analyzer=ANALYZER))
        return findings

    # -- id() keys --------------------------------------------------------
    def _id_key(self, node: ast.AST, path: str) -> List[Finding]:
        if not isinstance(node, ast.Subscript):
            return []
        index = node.slice
        if (isinstance(index, ast.Call)
                and isinstance(index.func, ast.Name)
                and index.func.id == "id"):
            return [Finding(
                rule=RULE_ID_KEY, path=path, line=node.lineno,
                message=("id()-based key: object addresses differ across "
                         "runs and servers; key on a protocol identifier"),
                analyzer=ANALYZER)]
        return []

    # -- float equality ---------------------------------------------------
    def _float_equality(self, node: ast.AST, path: str) -> List[Finding]:
        if not isinstance(node, ast.Compare):
            return []
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return []
        operands = [node.left] + list(node.comparators)
        for operand in operands:
            if isinstance(operand, ast.Constant) \
                    and isinstance(operand.value, float):
                return [Finding(
                    rule=RULE_FLOAT_EQ, path=path, line=node.lineno,
                    message=("exact equality against a float literal is "
                             "replay-unstable; compare with a tolerance "
                             "or use integers"),
                    analyzer=ANALYZER)]
        return []
