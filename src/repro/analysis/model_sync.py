"""Model-derivation checker: the abstract model must not fork the table.

The model checker's fidelity argument (:mod:`repro.check.model`) is
*derivation, not duplication*: every transition the abstract model
takes is validated against ``EDGES_BY_INPUT`` via
:func:`repro.core.state_machine.next_states`.  That argument collapses
silently if someone "optimizes" the model by pasting a private copy of
the edge table into it — the copy then drifts from the code and the
checker starts certifying a machine nobody runs.

Two rules over the model module (``repro/check/model.py``):

* **model-derivation** — the module must import the transition table
  or its accessors (``EDGES_BY_INPUT``, ``next_states``, or
  ``check_transition``) from ``repro.core.state_machine``.  A model
  module without that import cannot be validating its moves against
  the declared table.
* **model-edge-copy** — no hand-written edge-table literal: a
  collection literal whose elements are 2-tuples of ``EngineState``
  attributes, or a dict literal keyed by ``EngineState`` attributes
  with state-collection values, re-declares Figure-4 edges instead of
  deriving them.  (Flat tuples of states — membership tests like
  ``state in (A, B)`` — are fine; it is the *pair structure* that
  makes a literal an edge table.)

Like every rule in the suite, deliberate exceptions carry
``# repro: allow[model-edge-copy] -- reason``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set

from .common import (Finding, SourceFile, iter_findings, module_parts,
                     parse_file)

ANALYZER = "model-sync"
RULE_DERIVATION = "model-derivation"
RULE_EDGE_COPY = "model-edge-copy"

#: Names whose import from the table module proves derivation.
_TABLE_ACCESSORS = frozenset({
    "EDGES_BY_INPUT", "next_states", "check_transition",
})

#: The module that owns the Figure-4 declaration.
_TABLE_MODULE = "state_machine"


def model_modules(root: Path) -> List[Path]:
    """The abstract-model modules under ``root`` (any package layout
    whose dotted path ends in ``check.model``)."""
    candidates = ([root] if root.is_file()
                  else sorted(root.rglob("model.py")))
    out = []
    for path in candidates:
        if path.name != "model.py":
            continue
        parts = module_parts(path)
        if len(parts) >= 2 and parts[-2] == "check":
            out.append(path)
    return out


class ModelSyncChecker:
    """AST checks that the model derives from, not copies, the table."""

    def check_paths(self, paths: Iterable[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in paths:
            source = parse_file(path)
            findings.extend(iter_findings(self._check(source), source))
        return findings

    # ------------------------------------------------------------------
    def _check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        state_aliases = self._state_aliases(source.tree)
        if not self._imports_table(source.tree):
            findings.append(Finding(
                rule=RULE_DERIVATION, path=str(source.path), line=1,
                message=("abstract model does not import the "
                         "transition table (EDGES_BY_INPUT / "
                         "next_states / check_transition) from "
                         "repro.core.state_machine; its moves cannot "
                         "be derived from Figure 4"),
                analyzer=ANALYZER))
        for node in ast.walk(source.tree):
            finding = self._edge_literal(node, state_aliases,
                                         source.path)
            if finding is not None:
                findings.append(finding)
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _imports_table(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.module.split(".")[-1] == _TABLE_MODULE:
                if any(alias.name in _TABLE_ACCESSORS
                       for alias in node.names):
                    return True
            elif isinstance(node, ast.Attribute) \
                    and node.attr in _TABLE_ACCESSORS:
                # e.g. state_machine.next_states(...) via module import
                value = node.value
                if isinstance(value, ast.Name) \
                        and value.id == _TABLE_MODULE:
                    return True
        return False

    @staticmethod
    def _state_aliases(tree: ast.Module) -> Set[str]:
        """Names bound to the ``EngineState`` enum in this module."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "EngineState":
                        aliases.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in aliases:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def _edge_literal(self, node: ast.AST, aliases: Set[str],
                      path: Path) -> Optional[Finding]:
        # frozenset({...}) etc. need no special case: ast.walk visits
        # the inner collection literal on its own.
        elements: Optional[List[ast.expr]] = None
        if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
            elements = list(node.elts)
        elif isinstance(node, ast.Dict):
            if self._is_state_table_dict(node, aliases):
                return Finding(
                    rule=RULE_EDGE_COPY, path=str(path),
                    line=node.lineno,
                    message=("dict literal keyed by EngineState with "
                             "state-collection values re-declares the "
                             "transition table; derive it from "
                             "EDGES_BY_INPUT instead"),
                    analyzer=ANALYZER)
            return None
        if elements is None:
            return None
        pairs = sum(1 for e in elements if self._is_state_pair(e, aliases))
        if pairs >= 2:
            return Finding(
                rule=RULE_EDGE_COPY, path=str(path),
                line=node.lineno,
                message=(f"collection literal of {pairs} "
                         f"(EngineState, EngineState) pairs is a "
                         f"hand-written edge table; derive edges from "
                         f"EDGES_BY_INPUT instead"),
                analyzer=ANALYZER)
        return None

    def _is_state_table_dict(self, node: ast.Dict,
                             aliases: Set[str]) -> bool:
        rows = 0
        for key, value in zip(node.keys, node.values):
            if key is None or not self._is_state_attr(key, aliases):
                continue
            if isinstance(value, (ast.Set, ast.List, ast.Tuple)) \
                    and value.elts \
                    and all(self._is_state_attr(e, aliases)
                            for e in value.elts):
                rows += 1
            elif isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Name) \
                    and value.func.id in ("frozenset", "set") \
                    and len(value.args) == 1 \
                    and isinstance(value.args[0],
                                   (ast.Set, ast.List, ast.Tuple)) \
                    and value.args[0].elts \
                    and all(self._is_state_attr(e, aliases)
                            for e in value.args[0].elts):
                rows += 1
        return rows >= 2

    def _is_state_pair(self, node: ast.expr,
                       aliases: Set[str]) -> bool:
        return (isinstance(node, ast.Tuple) and len(node.elts) == 2
                and all(self._is_state_attr(e, aliases)
                        for e in node.elts))

    @staticmethod
    def _is_state_attr(node: ast.expr, aliases: Set[str]) -> bool:
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases)
